"""Unit tests for repro.bgp.asn."""

import pytest

from repro.bgp.asn import (
    AS_TRANS,
    ASNRegistry,
    MAX_ASN_16BIT,
    MAX_ASN_32BIT,
    is_16bit,
    is_32bit_only,
    is_private_asn,
    is_public_asn,
    is_reserved_asn,
    is_valid_asn,
)


class TestASNPredicates:
    def test_16bit_boundary(self):
        assert is_16bit(0)
        assert is_16bit(MAX_ASN_16BIT)
        assert not is_16bit(MAX_ASN_16BIT + 1)

    def test_32bit_only_boundary(self):
        assert not is_32bit_only(MAX_ASN_16BIT)
        assert is_32bit_only(MAX_ASN_16BIT + 1)
        assert is_32bit_only(MAX_ASN_32BIT)

    def test_valid_range(self):
        assert is_valid_asn(0)
        assert is_valid_asn(MAX_ASN_32BIT)
        assert not is_valid_asn(-1)
        assert not is_valid_asn(MAX_ASN_32BIT + 1)

    def test_as_trans_is_reserved(self):
        assert is_reserved_asn(AS_TRANS)
        assert is_private_asn(AS_TRANS)

    def test_as_zero_is_reserved(self):
        assert is_reserved_asn(0)
        assert not is_public_asn(0)

    def test_documentation_ranges_are_reserved(self):
        assert is_reserved_asn(64496)
        assert is_reserved_asn(64511)
        assert is_reserved_asn(65536)
        assert is_reserved_asn(65551)

    def test_private_16bit_range(self):
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert not is_private_asn(64000)

    def test_private_32bit_range(self):
        assert is_private_asn(4200000000)
        assert is_private_asn(4294967294)
        assert not is_private_asn(4199999999)

    def test_last_asn_reserved(self):
        assert is_private_asn(MAX_ASN_32BIT)
        assert is_private_asn(65535)

    def test_public_asns(self):
        for asn in (3356, 1299, 174, 200000, 4_000_000):
            assert is_public_asn(asn), asn

    def test_well_known_operator_asns_are_public(self):
        assert is_public_asn(15169)  # a normal allocated-range ASN
        assert not is_public_asn(64512)


class TestASNRegistry:
    def test_allocate_and_lookup(self):
        registry = ASNRegistry()
        registry.allocate(3356)
        assert registry.is_allocated(3356)
        assert 3356 in registry
        assert not registry.is_allocated(1299)

    def test_allocate_private_rejected(self):
        registry = ASNRegistry()
        with pytest.raises(ValueError):
            registry.allocate(64512)

    def test_allocate_reserved_rejected(self):
        registry = ASNRegistry()
        with pytest.raises(ValueError):
            registry.allocate(0)

    def test_allocate_many_and_len(self):
        registry = ASNRegistry.from_asns([1, 2, 3, 200000])
        assert len(registry) == 4

    def test_deallocate(self):
        registry = ASNRegistry.from_asns([10])
        registry.deallocate(10)
        assert not registry.is_allocated(10)
        registry.deallocate(10)  # idempotent

    def test_is_routable_requires_public_and_allocated(self):
        registry = ASNRegistry.from_asns([3356])
        assert registry.is_routable(3356)
        assert not registry.is_routable(1299)

    def test_iteration_is_sorted(self):
        registry = ASNRegistry.from_asns([30, 10, 20])
        assert list(registry) == [10, 20, 30]

    def test_count_32bit(self):
        registry = ASNRegistry.from_asns([3356, 200000, 400000])
        assert registry.count_32bit() == 2

    def test_contains_non_int(self):
        registry = ASNRegistry.from_asns([3356])
        assert "3356" not in registry
