"""Bearer-token auth: the middleware matrix and the typed client errors.

Pins the production-hardening contract of ``repro.service.auth``:

* the full matrix of (no token / wrong token / valid token) against
  (protected ``/v1/*`` endpoints / exempt ``/healthz`` + ``/metrics``),
  both at the service layer and over real HTTP;
* the structured error envelope of every 4xx the API can produce, and the
  typed exceptions (:class:`AuthError`, :class:`NotFoundError`,
  :class:`BadRequestError`) the client raises from it;
* replication pulls against an auth-enabled leader (the follower's client
  sends the token on every page);
* token resolution precedence: flag first, ``REPRO_AUTH_TOKEN`` fallback.
"""

from __future__ import annotations

import json

import pytest

from repro.service import (
    AuthError,
    BadRequestError,
    ClassificationServer,
    ClassificationService,
    MemoryBackend,
    NotFoundError,
    ReplicaSyncer,
    ServiceClient,
    ServiceError,
    SnapshotStore,
)
from repro.service.auth import AUTH_TOKEN_ENV, bearer_token, check_token, resolve_token
from tests.test_backends import build_snapshots

TOKEN = "s3cret-tok3n"

PROTECTED = (
    "/v1/snapshot/latest",
    "/v1/snapshot/100",
    "/v1/as/10",
    "/v1/diff",
    "/v1/stats",
    "/v1/replication/changes",
)
EXEMPT = ("/healthz", "/metrics")


@pytest.fixture()
def store(tmp_path):
    with SnapshotStore(tmp_path / "auth.db") as snapshot_store:
        for snapshot in build_snapshots(2):
            snapshot_store.append_snapshot(snapshot)
        yield snapshot_store


def _envelope(response):
    return json.loads(response.body.decode())["error"]


# ---------------------------------------------------------------------------------------
# Token plumbing
# ---------------------------------------------------------------------------------------
class TestTokenPlumbing:
    def test_resolve_token_prefers_the_flag(self, monkeypatch):
        monkeypatch.setenv(AUTH_TOKEN_ENV, "from-env")
        assert resolve_token("from-flag") == "from-flag"
        assert resolve_token(None) == "from-env"
        assert resolve_token("") == "from-env"
        monkeypatch.delenv(AUTH_TOKEN_ENV)
        assert resolve_token(None) is None

    def test_bearer_token_extraction(self):
        assert bearer_token(None) is None
        assert bearer_token({}) is None
        assert bearer_token({"Authorization": f"Bearer {TOKEN}"}) == TOKEN
        assert bearer_token({"authorization": f"Bearer {TOKEN}"}) == TOKEN
        # Present but not a bearer scheme: a credential, just a wrong one.
        assert bearer_token({"Authorization": "Basic dXNlcg=="}) == ""

    def test_check_token_statuses(self):
        assert check_token({"Authorization": f"Bearer {TOKEN}"}, TOKEN) is None
        missing = check_token(None, TOKEN)
        assert missing is not None and (missing.status, missing.code) == (
            401,
            "unauthorized",
        )
        wrong = check_token({"Authorization": "Bearer nope"}, TOKEN)
        assert wrong is not None and (wrong.status, wrong.code) == (403, "forbidden")
        basic = check_token({"Authorization": "Basic dXNlcg=="}, TOKEN)
        assert basic is not None and basic.status == 403


# ---------------------------------------------------------------------------------------
# The middleware matrix, service layer
# ---------------------------------------------------------------------------------------
class TestAuthMatrix:
    def test_no_token_configured_keeps_everything_open(self, store):
        service = ClassificationService(store)
        for target in PROTECTED + EXEMPT:
            response = service.handle(target)
            assert response.status in (200, 404), target

    def test_protected_endpoints_reject_missing_and_wrong_tokens(self, store):
        service = ClassificationService(store, auth_token=TOKEN)
        for target in PROTECTED:
            missing = service.handle(target)
            assert missing.status == 401, target
            assert _envelope(missing)["code"] == "unauthorized"
            wrong = service.handle(target, {"Authorization": "Bearer nope"})
            assert wrong.status == 403, target
            assert _envelope(wrong)["code"] == "forbidden"
            valid = service.handle(target, {"Authorization": f"Bearer {TOKEN}"})
            assert valid.status in (200, 404), target

    def test_exempt_endpoints_need_no_credentials(self, store):
        service = ClassificationService(store, auth_token=TOKEN)
        for target in EXEMPT:
            assert service.handle(target).status == 200, target

    def test_unroutable_v1_paths_are_still_auth_checked(self, store):
        """Probing for endpoints must not be cheaper without credentials."""
        service = ClassificationService(store, auth_token=TOKEN)
        response = service.handle("/v1/does/not/exist")
        assert response.status == 401
        # With credentials the probe gets the honest 404.
        response = service.handle(
            "/v1/does/not/exist", {"Authorization": f"Bearer {TOKEN}"}
        )
        assert response.status == 404

    def test_auth_rejections_never_touch_the_cache(self, store):
        service = ClassificationService(store, auth_token=TOKEN)
        authed = {"Authorization": f"Bearer {TOKEN}"}
        assert service.handle("/v1/snapshot/latest", authed).status == 200
        assert len(service.cache) == 1
        # A rejected request must not be served the cached body.
        assert service.handle("/v1/snapshot/latest").status == 401
        assert service.handle("/v1/snapshot/latest", authed).status == 200
        assert service.stats.cache_hits == 1


# ---------------------------------------------------------------------------------------
# Over real HTTP: envelope contract and typed client errors
# ---------------------------------------------------------------------------------------
class TestAuthOverHttp:
    @pytest.fixture()
    def served(self, store):
        with ClassificationServer(store, auth_token=TOKEN) as server:
            server.start()
            yield server

    def test_typed_errors_carry_the_envelope(self, served):
        with ServiceClient(served.url) as anonymous:
            assert anonymous.health()["status"] == "ok"  # exempt
            with pytest.raises(AuthError) as excinfo:
                anonymous.latest_snapshot()
            assert excinfo.value.status == 401
            assert excinfo.value.code == "unauthorized"
            assert "missing bearer token" in excinfo.value.message
        with ServiceClient(served.url, token="wrong") as impostor:
            with pytest.raises(AuthError) as excinfo:
                impostor.latest_snapshot()
            assert (excinfo.value.status, excinfo.value.code) == (403, "forbidden")

    def test_every_4xx_is_an_enveloped_typed_error(self, served):
        with ServiceClient(served.url, token=TOKEN) as client:
            assert "window_end" in client.latest_snapshot()
            with pytest.raises(BadRequestError) as bad:
                client.get("/v1/as/abc")
            assert (bad.value.status, bad.value.code) == (400, "bad_request")
            with pytest.raises(NotFoundError) as missing:
                client.snapshot(999_999)
            assert (missing.value.status, missing.value.code) == (404, "not_found")
            # Every typed error is still the base class for old callers.
            for excclass in (AuthError, BadRequestError, NotFoundError):
                assert issubclass(excclass, ServiceError)

    def test_stats_reports_auth_enabled(self, served):
        with ServiceClient(served.url, token=TOKEN) as client:
            assert client.stats()["auth"] == {"enabled": True}


# ---------------------------------------------------------------------------------------
# Replication against an auth-enabled leader
# ---------------------------------------------------------------------------------------
class TestAuthedReplication:
    def test_follower_pulls_with_token(self, store):
        with ClassificationServer(store, auth_token=TOKEN) as server:
            server.start()
            follower = MemoryBackend()
            with ServiceClient(server.url, token=TOKEN) as client:
                report = ReplicaSyncer(client, follower).sync_once()
            assert report.applied == 2 and report.caught_up

    def test_follower_without_token_is_rejected(self, store):
        with ClassificationServer(store, auth_token=TOKEN) as server:
            server.start()
            follower = MemoryBackend()
            with ServiceClient(server.url) as client:
                with pytest.raises(AuthError):
                    ReplicaSyncer(client, follower).sync_once()
            assert len(follower) == 0

    def test_cli_replicate_sends_the_token(self, tmp_path, store, capsys):
        from repro.cli import main

        with ClassificationServer(store, auth_token=TOKEN) as server:
            server.start()
            args = [
                "replicate",
                "--from",
                server.url,
                "--store",
                str(tmp_path / "replica.db"),
                "--once",
            ]
            # Without the token the first sync is rejected outright...
            assert main(args) == 1
            assert "HTTP 401" in capsys.readouterr().err
            # ...and with it (via the env fallback) the replica converges.
            assert main(args + ["--auth-token", TOKEN]) == 0
            assert "applied 2 snapshots" in capsys.readouterr().err
