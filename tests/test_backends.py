"""Backend-conformance suite for the pluggable storage layer.

Every :class:`~repro.service.backends.base.SnapshotBackend` implementation
must honour the same contract -- the serving, publishing, and replication
stacks are written against it, not against SQLite.  The suite runs each
contract assertion against every backend (SQLite, memory, and both tiered
combinations), then pins the cross-backend guarantees the tiers and the
replication layer add on top:

* a ``memory:`` follower converges byte-identically on a SQLite leader;
* a tiered store serves windows beyond the retention cap byte-identically
  to what the hot store served before archival demoted them;
* archive segments are checksummed, verifiable, and compactable, and a
  second process's archive view picks up fresh demotions via refresh.
"""

from __future__ import annotations

import itertools
import json
import threading

import pytest

from repro.cli import main
from repro.service import (
    ClassificationServer,
    ClassificationService,
    FencedWriterError,
    MemoryBackend,
    ReplicaSyncer,
    SnapshotArchive,
    SnapshotStore,
    StoreError,
    TieredBackend,
    open_store,
    parse_store_url,
    snapshot_payload,
)
from repro.stream import MemorySource, StreamConfig, StreamEngine, WindowSpec
from tests.test_stream import observation


def build_snapshots(count=5, *, size=100):
    """Drain a small stream run and return its *count* window snapshots."""
    events = []
    for index in range(count):
        base = index * size + 5
        events.append(observation([10 + index, 20], [f"{10 + index}:1"], timestamp=base))
        events.append(observation([20], [], timestamp=base + 10))
    captured = []
    engine = StreamEngine(
        StreamConfig(window=WindowSpec(size=size)), on_window=captured.append
    )
    engine.run(MemorySource(events))
    assert len(captured) == count
    return captured


@pytest.fixture(params=["sqlite", "memory", "tiered-sqlite", "tiered-memory"])
def make_backend(request, tmp_path):
    """A factory of fresh backends of one flavour (closed by the caller).

    ``make.archives`` tells retention-sensitive assertions whether pruned
    snapshots stay queryable (tiered flavours) or are gone (plain ones).
    """
    counter = itertools.count()
    opened = []

    def make(retention=None):
        serial = next(counter)
        if request.param == "sqlite":
            backend = open_store(tmp_path / f"store{serial}.db", retention=retention)
        elif request.param == "memory":
            backend = MemoryBackend(retention=retention)
        else:
            if request.param == "tiered-memory":
                hot = MemoryBackend()
            else:
                hot = open_store(tmp_path / f"store{serial}.db")
            backend = TieredBackend(
                hot, tmp_path / f"archive{serial}", retention=retention
            )
        opened.append(backend)
        return backend

    make.archives = request.param.startswith("tiered")
    yield make
    for backend in opened:
        try:
            backend.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------------------
# The contract, backend by backend
# ---------------------------------------------------------------------------------------
class TestConformance:
    def test_empty_backend(self, make_backend):
        store = make_backend()
        assert len(store) == 0
        assert store.latest() is None
        assert store.generation() == 0
        assert store.pruned_through() == 0
        assert store.applied_generation() == 0
        assert store.latest_window_end() is None
        assert store.snapshots() == []
        assert store.as_latest(10) is None

    def test_url_scheme_parses(self, make_backend):
        store = make_backend()
        scheme, _ = parse_store_url(store.url.split("+", 1)[0])
        assert scheme in ("sqlite", "memory")

    def test_round_trip_fidelity(self, make_backend):
        store = make_backend()
        snapshots = build_snapshots(3)
        ids = [store.append_snapshot(snapshot) for snapshot in snapshots]
        for snapshot, snapshot_id in zip(snapshots, ids):
            loaded = store.load_snapshot(snapshot_id)
            assert snapshot_payload(loaded) == snapshot_payload(snapshot)
            assert store.changes(snapshot_id) == snapshot.changed

    def test_leader_epoch_contract(self, make_backend):
        """Every backend persists the failover fence the same way: epoch 0
        at creation, monotonic bumps, stale-epoch appends fenced before any
        dedup can claim success, ``epoch=None`` opted out."""
        store = make_backend()
        assert store.leader_epoch() == 0
        assert store.stats()["leader_epoch"] == 0
        snapshots = build_snapshots(3)
        store.append_snapshot(snapshots[0])  # epoch=None: legacy writer
        store.append_snapshot(snapshots[1], epoch=0)
        assert store.bump_leader_epoch() == 1
        assert store.bump_leader_epoch() == 2
        assert store.leader_epoch() == 2
        generation = store.generation()
        with pytest.raises(FencedWriterError):
            store.append_snapshot(snapshots[2], epoch=1)
        # The fenced write landed nothing and moved nothing.
        assert len(store) == 2 and store.generation() == generation
        # Fencing outranks dedup: re-offering a held window is still fenced.
        with pytest.raises(FencedWriterError):
            store.append_snapshot(snapshots[0], if_absent=True, epoch=0)
        store.append_snapshot(snapshots[2], epoch=2)
        assert len(store) == 3
        assert store.stats()["leader_epoch"] == 2

    def test_generation_monotonic_across_writes(self, make_backend):
        store = make_backend()
        seen = [store.generation()]
        for snapshot in build_snapshots(4):
            store.append_snapshot(snapshot)
            seen.append(store.generation())
        assert seen == sorted(seen) and len(set(seen)) == len(seen)

    def test_append_if_absent_is_idempotent(self, make_backend):
        store = make_backend()
        first, second = build_snapshots(2)
        original = store.append_snapshot(first)
        generation = store.generation()
        assert store.append_snapshot(first, if_absent=True) == original
        assert store.generation() == generation  # dedup moves nothing
        assert len(store) == 1
        assert store.append_snapshot(second, if_absent=True) != original
        assert store.generation() > generation

    def test_pinned_snapshot_ids(self, make_backend):
        store = make_backend()
        first, second = build_snapshots(2)
        assert store.append_snapshot(first, snapshot_id=7) == 7
        # Re-pinning the same window on the same id is a no-op.
        assert store.append_snapshot(first, snapshot_id=7) == 7
        assert len(store) == 1
        # A different window on a taken id is replica divergence.
        with pytest.raises(StoreError):
            store.append_snapshot(second, snapshot_id=7)
        # Auto-assigned ids continue past the pin (never reused).
        assert store.append_snapshot(second) == 8

    def test_ids_never_reused_after_drop(self, make_backend):
        store = make_backend()
        first, second = build_snapshots(2)
        dropped_id = store.append_snapshot(first)
        generation = store.generation()
        assert store.drop_snapshot(dropped_id) is True
        assert store.generation() > generation  # a drop is a committed write
        assert store.drop_snapshot(dropped_id) is False
        assert store.append_snapshot(second) > dropped_id

    def test_retention_caps_and_raises_horizon(self, make_backend):
        store = make_backend(retention=2)
        snapshots = build_snapshots(5)
        ids = [store.append_snapshot(snapshot) for snapshot in snapshots]
        # The replication feed (and the hot tier) hold at most the cap.
        assert len(store.snapshots_since(0)) == 2
        assert store.pruned_through() > 0
        assert store.latest().snapshot_id == ids[-1]
        if make_backend.archives:
            # Tiered: nothing is lost; old windows fall through to cold.
            assert len(store) == 5
            for snapshot, snapshot_id in zip(snapshots, ids):
                assert snapshot_payload(store.load_snapshot(snapshot_id)) == (
                    snapshot_payload(snapshot)
                )
        else:
            assert len(store) == 2
            with pytest.raises(StoreError):
                store.load_snapshot(ids[0])

    def test_window_lookups(self, make_backend):
        store = make_backend()
        snapshots = build_snapshots(3)
        ids = [store.append_snapshot(snapshot) for snapshot in snapshots]
        target = snapshots[1]
        assert store.by_window_end(target.window_end).snapshot_id == ids[1]
        assert store.by_window_end(999_999) is None
        found = store.find_window("window", target.window_start, target.window_end)
        assert found.snapshot_id == ids[1]
        assert store.find_window("batch", target.window_start, target.window_end) is None
        assert store.latest_window_end() == snapshots[-1].window_end
        assert store.latest_window_end("batch") is None

    def test_as_history_newest_first(self, make_backend):
        store = make_backend()
        for snapshot in build_snapshots(4):
            store.append_snapshot(snapshot)
        history = store.as_history(20)
        assert len(history) == 4
        assert [entry.snapshot_id for entry in history] == sorted(
            (entry.snapshot_id for entry in history), reverse=True
        )
        assert store.as_history(20, limit=2) == history[:2]
        assert store.as_latest(20) == history[0]
        assert store.as_history(9999) == []

    def test_applied_generation_is_monotonic(self, make_backend):
        store = make_backend()
        store.set_applied_generation(5)
        store.set_applied_generation(3)  # never moves backwards
        assert store.applied_generation() == 5
        with pytest.raises(ValueError):
            store.set_applied_generation(-1)

    def test_stats_common_keys(self, make_backend):
        store = make_backend(retention=3)
        for snapshot in build_snapshots(2):
            store.append_snapshot(snapshot)
        stats = store.stats()
        for key in ("backend", "generation", "snapshots", "retention", "pruned_through"):
            assert key in stats
        assert stats["snapshots"] == 2
        assert stats["retention"] == 3

    def test_concurrent_reader_during_writer(self, make_backend):
        store = make_backend(retention=4)
        snapshots = build_snapshots(12)
        errors = []
        done = threading.Event()

        def read_loop():
            while not done.is_set():
                try:
                    latest = store.latest()
                    if latest is not None:
                        store.load_snapshot(latest.snapshot_id)
                        store.as_history(20, limit=3)
                except StoreError:
                    pass  # pruned mid-read: allowed, never a torn snapshot
                except Exception as error:  # noqa: BLE001 - the assertion
                    errors.append(error)
                    return

        readers = [threading.Thread(target=read_loop) for _ in range(3)]
        for reader in readers:
            reader.start()
        try:
            for snapshot in snapshots:
                store.append_snapshot(snapshot)
        finally:
            done.set()
            for reader in readers:
                reader.join(timeout=10)
        assert errors == []
        assert store.latest().window_end == snapshots[-1].window_end


# ---------------------------------------------------------------------------------------
# open_store URL dispatch
# ---------------------------------------------------------------------------------------
class TestOpenStore:
    def test_plain_path_is_sqlite(self, tmp_path):
        with open_store(tmp_path / "plain.db") as store:
            assert isinstance(store, SnapshotStore)
            assert store.url == f"sqlite:{tmp_path / 'plain.db'}"

    def test_sqlite_scheme(self, tmp_path):
        with open_store(f"sqlite:{tmp_path / 'explicit.db'}") as store:
            assert isinstance(store, SnapshotStore)

    def test_memory_scheme(self):
        with open_store("memory:", retention=3) as store:
            assert isinstance(store, MemoryBackend)
            assert store.retention == 3

    def test_legacy_memory_spelling_is_sqlite(self):
        with open_store(":memory:") as store:
            assert isinstance(store, SnapshotStore)

    def test_archive_dir_builds_tiered(self, tmp_path):
        with open_store(
            tmp_path / "hot.db", retention=2, archive_dir=tmp_path / "cold"
        ) as store:
            assert isinstance(store, TieredBackend)
            assert store.retention == 2
            assert store.hot.retention is None  # cap lives on the wrapper

    def test_bad_urls(self):
        with pytest.raises(ValueError):
            parse_store_url("sqlite:")
        with pytest.raises(ValueError):
            parse_store_url("memory:named")

    def test_tiered_rejects_capped_hot(self, tmp_path):
        with open_store(tmp_path / "capped.db", retention=1) as hot:
            with pytest.raises(ValueError):
                TieredBackend(hot, tmp_path / "cold")


# ---------------------------------------------------------------------------------------
# Replication across heterogeneous backends
# ---------------------------------------------------------------------------------------
class TestHeterogeneousReplication:
    def test_memory_follower_converges_byte_identically_on_sqlite_leader(self, tmp_path):
        leader = SnapshotStore(tmp_path / "leader.db")
        snapshots = build_snapshots(4)
        for snapshot in snapshots:
            leader.append_snapshot(snapshot)
        follower = MemoryBackend()
        with leader, ClassificationServer(leader) as server:
            server.start()
            syncer = ReplicaSyncer(server.url, follower, page_size=2)
            report = syncer.sync_once()
            assert report.applied == 4 and report.caught_up
            leader_service = ClassificationService(leader)
            follower_service = ClassificationService(follower)
            targets = ["/v1/snapshot/latest", "/v1/diff", "/v1/as/20?history=10"]
            targets += [f"/v1/snapshot/{s.window_end}" for s in snapshots]
            for target in targets:
                assert leader_service.handle(target) == follower_service.handle(target)
            syncer.client.close()


# ---------------------------------------------------------------------------------------
# Tiered archive: beyond-retention serving and segment maintenance
# ---------------------------------------------------------------------------------------
class TestTieredArchive:
    def test_beyond_retention_reads_are_byte_identical(self, tmp_path):
        """The acceptance criterion: a window older than the cap serves the
        exact bytes the hot store served before archival demoted it."""
        snapshots = build_snapshots(6)
        with open_store(tmp_path / "reference.db") as reference, open_store(
            tmp_path / "hot.db", retention=2, archive_dir=tmp_path / "cold"
        ) as tiered:
            reference_service = ClassificationService(reference)
            tiered_service = ClassificationService(tiered)
            expected = {}
            for snapshot in snapshots:
                # Capture the reference body while every window is still hot.
                reference.append_snapshot(snapshot)
                target = f"/v1/snapshot/{snapshot.window_end}"
                expected[target] = reference_service.handle(target)
                tiered.append_snapshot(snapshot)
            assert len(tiered.hot) == 2 and len(tiered) == 6
            for target, body in expected.items():
                assert tiered_service.handle(target) == body
            # Cold per-AS history spans the full run, not just the hot cap.
            body = tiered_service.handle("/v1/as/20?history=10").body
            assert len(json.loads(body)["history"]) == 6

    def test_archive_survives_reopen_and_refresh(self, tmp_path):
        snapshots = build_snapshots(5)
        with open_store(
            tmp_path / "hot.db", retention=1, archive_dir=tmp_path / "cold"
        ) as producer:
            for snapshot in snapshots[:3]:
                producer.append_snapshot(snapshot)
            # A second process's view (a serving worker) opened mid-run ...
            with open_store(
                tmp_path / "hot.db", retention=1, archive_dir=tmp_path / "cold"
            ) as worker:
                assert len(worker) == 3
                # ... sees later demotions: the hot generation moves, so the
                # tiered view re-scans the archive tail.
                for snapshot in snapshots[3:]:
                    producer.append_snapshot(snapshot)
                assert len(worker) == 5
                for index, meta in enumerate(worker.snapshots()):
                    assert snapshot_payload(worker.load_snapshot(meta.snapshot_id)) == (
                        snapshot_payload(snapshots[index])
                    )

    def test_archive_verify_detects_corruption(self, tmp_path):
        with open_store(
            tmp_path / "hot.db", retention=1, archive_dir=tmp_path / "cold"
        ) as store:
            for snapshot in build_snapshots(3):
                store.append_snapshot(snapshot)
        archive = SnapshotArchive(tmp_path / "cold")
        assert archive.verify() == []
        segment = tmp_path / "cold" / archive.segments()[0]["segment"]
        raw = bytearray(segment.read_bytes())
        flip = raw.index(b'"tagger"')  # corrupt inside the checksummed record
        raw[flip + 1] ^= 0x01
        segment.write_bytes(bytes(raw))
        corrupted = SnapshotArchive(tmp_path / "cold")
        assert corrupted.verify() != []
        with pytest.raises(StoreError):
            corrupted.load(corrupted.ids()[0])

    def test_truncated_tail_is_tolerated_and_rearchived(self, tmp_path):
        with open_store(
            tmp_path / "hot.db", retention=1, archive_dir=tmp_path / "cold"
        ) as store:
            for snapshot in build_snapshots(3):
                store.append_snapshot(snapshot)
        archive = SnapshotArchive(tmp_path / "cold")
        complete = len(archive)
        segment = tmp_path / "cold" / archive.segments()[-1]["segment"]
        raw = segment.read_bytes()
        segment.write_bytes(raw[: len(raw) - 20])  # crash mid-append
        reopened = SnapshotArchive(tmp_path / "cold")
        assert len(reopened) == complete - 1
        assert reopened.verify() == []

    def test_compact_coalesces_segments(self, tmp_path):
        archive = SnapshotArchive(tmp_path / "cold")
        with open_store(tmp_path / "hot.db") as hot:
            tiered = TieredBackend(hot, archive, retention=1)
            for snapshot in build_snapshots(5):
                tiered.append_snapshot(snapshot)
            before_ids = archive.ids()
            archive.compact()
            assert archive.verify() == []
            assert archive.ids() == before_ids
            for snapshot_id in before_ids:
                archive.load(snapshot_id)

    def test_archive_cli(self, tmp_path, capsys):
        with open_store(
            tmp_path / "hot.db", retention=1, archive_dir=tmp_path / "cold"
        ) as store:
            for snapshot in build_snapshots(3):
                store.append_snapshot(snapshot)
        assert main(["archive", str(tmp_path / "cold"), "list"]) == 0
        assert "2 archived snapshots" in capsys.readouterr().out
        assert main(["archive", str(tmp_path / "cold"), "verify"]) == 0
        assert ": OK" in capsys.readouterr().out
        assert main(["archive", str(tmp_path / "cold"), "compact"]) == 0
        assert main(["archive", str(tmp_path / "missing"), "verify"]) == 1
