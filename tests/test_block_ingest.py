"""Block-ingest conformance: batched blocks must be invisible in the results.

The engine's block path (``ingest_block`` / ``run`` over block-yielding
sources) is a pure throughput optimisation; this suite pins the contract
that makes it safe to ship:

* per-event ``ingest()`` and block ingest of any size produce *identical*
  window snapshots, final classifications, sanitation statistics, and
  retention state — for both the ``object`` and ``columnar``
  representations, both window policies, and blocks that straddle window
  cuts (including late events inside a block);
* auto-checkpoints fire at the same event positions with the same captured
  state, even when the boundary lands mid-block, and a restore from a
  mid-block checkpoint is transparent;
* ``WindowClock.advance_block`` is observationally equal to per-event
  ``advance``;
* every shipped source yields blocks that concatenate to exactly its event
  iterator, and ``MRTReplaySource`` ordering is a function of blob
  *contents* only (never mapping insertion order);
* ingest telemetry flows through the publisher into the snapshot store and
  onto ``/metrics``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgp.announcement import RouteObservation
from repro.bgp.asn import ASNRegistry
from repro.bgp.community import CommunitySet
from repro.bgp.messages import BGPUpdate, PathAttributes
from repro.bgp.path import ASPath
from repro.bgp.prefix import parse_prefix
from repro.mrt.encoder import MRTEncoder
from repro.service import MemoryBackend, attach_store, render_metrics
from repro.stream import (
    BlockSource,
    CheckpointManager,
    MemorySource,
    MRTReplaySource,
    ScenarioSource,
    StreamConfig,
    StreamEngine,
    WindowClock,
    WindowPolicy,
    WindowSpec,
    iter_event_blocks,
)

REPRESENTATIONS = ("object", "columnar")
BLOCK_SIZES = (1, 7, 64, 4096)


def observation(asns, comms=(), timestamp=0, collector="rrc00"):
    """One crafted update announcement."""
    return RouteObservation(
        collector=collector,
        peer_asn=asns[0],
        prefix=parse_prefix("8.8.8.0/24"),
        path=ASPath(asns),
        communities=CommunitySet.from_strings(comms),
        timestamp=timestamp,
    )


def varied_feed():
    """A feed exercising every code path the block refactor touched.

    Multiple peers (so multi-shard partitioning matters), repeated tuples
    (dedup hits), community taggers, an unallocated AS (sanitation drop when
    a registry is armed), out-of-order timestamps (late events), and enough
    time span to close several windows.
    """
    events = []
    for round_index in range(6):
        base = round_index * 100
        events.append(observation([10, 30], ["30:1"], timestamp=base))
        events.append(observation([20, 30], ["30:1"], timestamp=base + 10))
        events.append(observation([10, 40, 50], [], timestamp=base + 20))
        events.append(observation([20, 40, 50], ["40:7"], timestamp=base + 30))
        events.append(observation([60], ["60:1"], timestamp=base + 40))
        # A straggler behind the watermark: late, must only bump counters.
        if round_index >= 2:
            events.append(observation([10, 30], ["30:1"], timestamp=base - 150))
    return events


def engine_fingerprint(engine, result):
    """Everything block size must not change, in comparable plain data."""
    return {
        "result": (
            result.as_code_map(),
            result.store.state_dict(),
            set(result.observed_ases),
        ),
        "snapshots": [
            (
                snapshot.window_start,
                snapshot.window_end,
                snapshot.skipped_windows,
                snapshot.events_total,
                snapshot.unique_tuples,
                snapshot.changed,
                snapshot.result.as_code_map(),
            )
            for snapshot in engine.snapshots
        ],
        "events_in": engine.stats.events_in,
        "windows_closed": engine.stats.windows_closed,
        "tuples_evicted": engine.stats.tuples_evicted,
        "late_events": engine.late_events,
        "unique_tuples": engine.unique_tuples,
        "sanitation": engine.sanitation_stats().as_dict(),
    }


def run_per_event(config, events, **kwargs):
    engine = StreamEngine(config, **kwargs)
    for event in events:
        engine.ingest(event)
    return engine, engine.finish()


def run_blocked(config, events, block_size, **kwargs):
    engine = StreamEngine(config, **kwargs)
    for start in range(0, len(events), block_size):
        engine.ingest_block(events[start : start + block_size])
    return engine, engine.finish()


# ---------------------------------------------------------------------------------------
# Per-event == block, across sizes and representations
# ---------------------------------------------------------------------------------------
class TestBlockEquivalence:
    @pytest.mark.parametrize("representation", REPRESENTATIONS)
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_cumulative_windows(self, representation, block_size):
        events = varied_feed()

        def config():
            return StreamConfig(
                window=WindowSpec(size=100),
                shards=2,
                representation=representation,
            )

        baseline, base_result = run_per_event(config(), events)
        blocked, block_result = run_blocked(config(), events, block_size)
        assert engine_fingerprint(blocked, block_result) == engine_fingerprint(
            baseline, base_result
        )

    @pytest.mark.parametrize("representation", REPRESENTATIONS)
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_sliding_windows_with_eviction(self, representation, block_size):
        events = varied_feed()
        # One tuple only announced once at the start: must age out identically.
        events.insert(0, observation([70, 30], ["30:1"], timestamp=0))

        def config():
            return StreamConfig(
                window=WindowSpec(size=100, policy=WindowPolicy.SLIDING, horizon=200),
                shards=2,
                representation=representation,
            )

        baseline, base_result = run_per_event(config(), events)
        blocked, block_result = run_blocked(config(), events, block_size)
        assert engine_fingerprint(blocked, block_result) == engine_fingerprint(
            baseline, base_result
        )
        assert blocked.stats.tuples_evicted > 0

    @pytest.mark.parametrize("block_size", (7, 4096))
    def test_row_algorithm(self, block_size):
        events = varied_feed()

        def config():
            return StreamConfig(window=WindowSpec(size=100), algorithm="row")

        baseline, base_result = run_per_event(config(), events)
        blocked, block_result = run_blocked(config(), events, block_size)
        assert engine_fingerprint(blocked, block_result) == engine_fingerprint(
            baseline, base_result
        )
        assert block_result.algorithm == "row"

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_sanitation_drops_match(self, block_size):
        registry = ASNRegistry.from_asns([10, 20, 30, 40, 50])  # 60 unallocated
        events = varied_feed()

        def config():
            return StreamConfig(window=WindowSpec(size=100), shards=2)

        baseline, base_result = run_per_event(config(), events, asn_registry=registry)
        blocked, block_result = run_blocked(
            config(), events, block_size, asn_registry=registry
        )
        assert engine_fingerprint(blocked, block_result) == engine_fingerprint(
            baseline, base_result
        )
        assert blocked.sanitation_stats().dropped_unallocated_asn > 0
        assert 60 not in block_result.observed_ases

    def test_run_respects_configured_block_size(self):
        events = varied_feed()
        engine = StreamEngine(
            StreamConfig(window=WindowSpec(size=100), ingest_block_size=7)
        )
        result = engine.run(MemorySource(events))
        baseline, base_result = run_per_event(
            StreamConfig(window=WindowSpec(size=100)), events
        )
        assert engine_fingerprint(engine, result) == engine_fingerprint(
            baseline, base_result
        )
        # 33 events in blocks of 7 -> 5 blocks, not 33.
        assert engine.stats.blocks_in == -(-len(events) // 7)

    def test_one_event_ingest_is_a_one_block(self):
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        engine.ingest(observation([10], timestamp=1))
        assert engine.stats.blocks_in == 1
        assert engine.stats.block_size_buckets[0] == 1

    def test_empty_block_is_a_no_op(self):
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        engine.ingest_block([])
        assert engine.stats.blocks_in == 0
        assert engine.stats.events_in == 0


# ---------------------------------------------------------------------------------------
# Window-cut straddling
# ---------------------------------------------------------------------------------------
class TestWindowCutStraddle:
    def test_block_straddling_cut_splits_at_the_cut(self):
        """Regression: one block spanning a boundary must flush mid-block.

        Events 0..3 live in [0, 100); event at t=150 crosses into [100, 200)
        and must see the first window already flushed — exactly as per-event
        ingest would do — even though all five arrive in one block.
        """
        events = [
            observation([10, 30], ["30:1"], timestamp=0),
            observation([20, 30], ["30:1"], timestamp=40),
            observation([10, 40], [], timestamp=80),
            observation([20, 40], [], timestamp=99),
            observation([10, 30], ["30:1"], timestamp=150),
        ]
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        engine.ingest_block(events)
        assert engine.stats.windows_closed == 1
        snapshot = engine.snapshots[0]
        assert (snapshot.window_start, snapshot.window_end) == (0, 100)
        # The snapshot counts only the pre-cut events.
        assert snapshot.events_total == 4

    @pytest.mark.parametrize("representation", REPRESENTATIONS)
    def test_straddle_with_late_events_matches_per_event(self, representation):
        """A block holding a cut *and* late stragglers behind the watermark."""
        events = [
            observation([10, 30], ["30:1"], timestamp=10),
            observation([20, 40], [], timestamp=120),  # closes [0, 100)
            observation([10, 30], ["30:1"], timestamp=5),  # late, behind watermark
            observation([20, 50], ["50:2"], timestamp=250),  # closes [100, 200)
            observation([10, 40], [], timestamp=90),  # late again
        ]

        def config():
            return StreamConfig(
                window=WindowSpec(size=100), shards=2, representation=representation
            )

        baseline, base_result = run_per_event(config(), events)
        blocked, block_result = run_blocked(config(), events, len(events))
        assert engine_fingerprint(blocked, block_result) == engine_fingerprint(
            baseline, base_result
        )
        assert blocked.late_events == 2

    def test_block_spanning_many_windows(self):
        """One block can close several windows; each gets its own snapshot."""
        events = [observation([10, 30], ["30:1"], timestamp=ts) for ts in range(0, 1000, 50)]
        baseline, base_result = run_per_event(
            StreamConfig(window=WindowSpec(size=100)), events
        )
        blocked, block_result = run_blocked(
            StreamConfig(window=WindowSpec(size=100)), events, len(events)
        )
        assert engine_fingerprint(blocked, block_result) == engine_fingerprint(
            baseline, base_result
        )
        # [0,100) .. [800,900) close on watermark moves; finish() closes the
        # in-progress [900, 1000) for a tenth.
        assert blocked.stats.windows_closed == 10


# ---------------------------------------------------------------------------------------
# Checkpoints at and across block boundaries
# ---------------------------------------------------------------------------------------
class TestBlockCheckpoints:
    @pytest.mark.parametrize("representation", REPRESENTATIONS)
    def test_auto_checkpoints_fire_at_identical_positions(
        self, tmp_path, representation
    ):
        """checkpoint_every=13 never divides block size 64: every auto
        checkpoint lands mid-block, and each must capture the same state the
        per-event engine captures after the same event count."""
        events = varied_feed()

        def build(subdir):
            manager = CheckpointManager(tmp_path / subdir, keep=50)
            engine = StreamEngine(
                StreamConfig(
                    window=WindowSpec(size=100),
                    shards=2,
                    representation=representation,
                    checkpoint_every=13,
                ),
                checkpoints=manager,
            )
            return manager, engine

        manager_a, baseline = build("per_event")
        for event in events:
            baseline.ingest(event)

        manager_b, blocked = build("blocked")
        for start in range(0, len(events), 64):
            blocked.ingest_block(events[start : start + 64])

        assert blocked.stats.checkpoints_written == baseline.stats.checkpoints_written
        assert blocked.stats.checkpoints_written == len(events) // 13

        restored_a = StreamEngine.restore(manager_a)
        restored_b = StreamEngine.restore(manager_b)
        assert restored_a.stats.events_in == restored_b.stats.events_in
        assert engine_fingerprint(restored_b, restored_b.finish()) == engine_fingerprint(
            restored_a, restored_a.finish()
        )

    @pytest.mark.parametrize("representation", REPRESENTATIONS)
    def test_restore_from_mid_block_checkpoint_is_transparent(
        self, tmp_path, representation
    ):
        """Crash after a mid-block auto checkpoint, resume, finish per-event:
        the result must equal an uninterrupted run over the whole feed."""
        events = varied_feed()

        def config():
            return StreamConfig(
                window=WindowSpec(size=100),
                shards=2,
                representation=representation,
                checkpoint_every=13,
            )

        manager = CheckpointManager(tmp_path, keep=1)
        first = StreamEngine(config(), checkpoints=manager)
        first.ingest_block(events[:20])  # auto checkpoint fires at event 13


        resumed = StreamEngine.restore(manager)
        assert resumed.stats.events_in == 13
        for event in events[13:]:
            resumed.ingest(event)

        uninterrupted, base_result = run_per_event(config(), events)
        resumed_print = engine_fingerprint(resumed, resumed.finish())
        base_print = engine_fingerprint(uninterrupted, base_result)
        # Snapshot retention is in-memory state, not checkpointed: the
        # resumed engine only holds windows closed after the restore — but
        # those must be exactly the tail of the uninterrupted run's.
        resumed_snapshots = resumed_print.pop("snapshots")
        base_snapshots = base_print.pop("snapshots")
        assert resumed_snapshots == base_snapshots[-len(resumed_snapshots) :]
        assert resumed_print == base_print


# ---------------------------------------------------------------------------------------
# WindowClock.advance_block == advance per event
# ---------------------------------------------------------------------------------------
class TestAdvanceBlock:
    @given(
        timestamps=st.lists(st.integers(min_value=0, max_value=2000), max_size=40),
        lateness=st.sampled_from([0, 25, 150]),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_per_event_advance(self, timestamps, lateness):
        spec = WindowSpec(size=100, allowed_lateness=lateness)
        per_event = WindowClock(spec)
        closes_a = []
        for position, timestamp in enumerate(timestamps):
            closed = per_event.advance(timestamp)
            if closed is not None:
                closes_a.append((position, closed))

        blocked = WindowClock(spec)
        closes_b = blocked.advance_block(timestamps)

        assert closes_b == closes_a
        assert blocked.max_timestamp == per_event.max_timestamp
        assert blocked.late_events == per_event.late_events
        assert blocked.state_dict() == per_event.state_dict()

    @given(
        timestamps=st.lists(st.integers(min_value=0, max_value=2000), max_size=40),
        split=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_splitting_a_block_changes_nothing(self, timestamps, split):
        split = min(split, len(timestamps))
        whole = WindowClock(WindowSpec(size=100))
        closes_whole = whole.advance_block(timestamps)

        halves = WindowClock(WindowSpec(size=100))
        closes_halves = halves.advance_block(timestamps[:split])
        closes_halves += [
            (position + split, closed)
            for position, closed in halves.advance_block(timestamps[split:])
        ]
        assert closes_halves == closes_whole
        assert halves.state_dict() == whole.state_dict()


# ---------------------------------------------------------------------------------------
# Property: random feeds, random block sizes
# ---------------------------------------------------------------------------------------
def _observations():
    return st.lists(
        st.builds(
            observation,
            asns=st.lists(
                st.sampled_from([10, 20, 30, 40, 50]), min_size=1, max_size=4
            ),
            comms=st.sampled_from([(), ("30:1",), ("40:7", "30:1")]),
            timestamp=st.integers(min_value=0, max_value=1500),
        ),
        max_size=30,
    )


class TestBlockIngestProperty:
    @pytest.mark.parametrize("representation", REPRESENTATIONS)
    @given(events=_observations(), block_size=st.integers(min_value=1, max_value=31))
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_per_event_equals_blocked(self, representation, events, block_size):
        def config():
            return StreamConfig(
                window=WindowSpec(size=100), shards=2, representation=representation
            )

        baseline, base_result = run_per_event(config(), events)
        blocked, block_result = run_blocked(config(), events, block_size)
        assert engine_fingerprint(blocked, block_result) == engine_fingerprint(
            baseline, base_result
        )

    @given(events=_observations(), block_size=st.integers(min_value=1, max_value=31))
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_sliding_per_event_equals_blocked(self, events, block_size):
        def config():
            return StreamConfig(
                window=WindowSpec(size=100, policy=WindowPolicy.SLIDING, horizon=300),
                shards=2,
            )

        baseline, base_result = run_per_event(config(), events)
        blocked, block_result = run_blocked(config(), events, block_size)
        assert engine_fingerprint(blocked, block_result) == engine_fingerprint(
            baseline, base_result
        )


# ---------------------------------------------------------------------------------------
# Sources: blocks concatenate to the event iterator
# ---------------------------------------------------------------------------------------
def _mrt_blob(timestamps, peer=10):
    encoder = MRTEncoder()
    for timestamp in timestamps:
        encoder.write_update(
            BGPUpdate(
                peer_asn=peer,
                timestamp=timestamp,
                announced=(parse_prefix("8.8.8.0/24"),),
                attributes=PathAttributes(
                    as_path=ASPath([peer]), communities=CommunitySet.empty()
                ),
            )
        )
    return encoder.getvalue()


class TestSourceBlocks:
    @pytest.mark.parametrize("size", (1, 2, 5, 100))
    def test_memory_source(self, size):
        source = MemorySource(varied_feed())
        assert isinstance(source, BlockSource)
        blocks = list(source.iter_blocks(size))
        assert [event for block in blocks for event in block] == list(source)
        assert all(len(block) <= size for block in blocks)

    @pytest.mark.parametrize("size", (1, 3, 7))
    def test_scenario_source(self, size):
        from repro.bgp.announcement import PathCommTuple

        items = [
            PathCommTuple(ASPath([10, 30]), CommunitySet.from_strings(["30:1"])),
            PathCommTuple(ASPath([20, 40]), CommunitySet.empty()),
        ]
        source = ScenarioSource(items, start=0, duration=100, repeat=3)
        assert isinstance(source, BlockSource)
        blocks = list(source.iter_blocks(size))
        assert [event for block in blocks for event in block] == list(source)

    @pytest.mark.parametrize("order", ("archive", "time"))
    @pytest.mark.parametrize("size", (1, 2, 4, 100))
    def test_mrt_replay_source(self, order, size):
        blobs = {
            "rrc00": _mrt_blob([300, 100, 200], peer=10),
            "rrc01": _mrt_blob([150, 100], peer=20),
        }
        source = MRTReplaySource(blobs, order=order)
        assert isinstance(source, BlockSource)
        blocks = list(source.iter_blocks(size))
        flattened = [
            (event.collector, event.timestamp) for block in blocks for event in block
        ]
        assert flattened == [(event.collector, event.timestamp) for event in source]

    def test_mrt_archive_blocks_never_span_collectors(self):
        blobs = {
            "rrc00": _mrt_blob([1, 2, 3], peer=10),
            "rrc01": _mrt_blob([4, 5], peer=20),
        }
        blocks = list(MRTReplaySource(blobs).iter_blocks(2))
        for block in blocks:
            assert len({event.collector for event in block}) == 1

    def test_iter_event_blocks_chunks_plain_iterables(self):
        events = varied_feed()
        blocks = list(iter_event_blocks(iter(events), 5))
        assert [event for block in blocks for event in block] == events
        assert all(len(block) <= 5 for block in blocks[:-1])

    def test_iter_event_blocks_prefers_source_blocks(self):
        class Probe(MemorySource):
            def __init__(self, events):
                super().__init__(events)
                self.asked = None

            def iter_blocks(self, size):
                self.asked = size
                return super().iter_blocks(size)

        probe = Probe(varied_feed())
        list(iter_event_blocks(probe, 9))
        assert probe.asked == 9

    @pytest.mark.parametrize("size", (0, -1))
    def test_invalid_block_sizes_rejected(self, size):
        with pytest.raises(ValueError):
            iter_event_blocks(varied_feed(), size)
        with pytest.raises(ValueError):
            list(MemorySource(varied_feed()).iter_blocks(size))


# ---------------------------------------------------------------------------------------
# MRT replay determinism
# ---------------------------------------------------------------------------------------
class TestMRTReplayDeterminism:
    def test_order_independent_of_mapping_insertion(self):
        """Replay order is a function of blob contents, not dict ordering."""
        blob_a = _mrt_blob([300, 100], peer=10)
        blob_b = _mrt_blob([200, 100], peer=20)
        for order in ("archive", "time"):
            forward = MRTReplaySource({"rrc00": blob_a, "rrc01": blob_b}, order=order)
            reverse = MRTReplaySource({"rrc01": blob_b, "rrc00": blob_a}, order=order)
            key = lambda event: (event.collector, event.timestamp, event.peer_asn)
            assert [key(e) for e in forward] == [key(e) for e in reverse]
            assert [
                [key(e) for e in block] for block in forward.iter_blocks(2)
            ] == [[key(e) for e in block] for block in reverse.iter_blocks(2)]

    def test_time_order_breaks_ties_on_collector_name(self):
        blobs = {
            "rrc01": _mrt_blob([100, 50], peer=20),
            "rrc00": _mrt_blob([100], peer=10),
        }
        merged = [
            (event.timestamp, event.collector)
            for event in MRTReplaySource(blobs, order="time")
        ]
        assert merged == [(50, "rrc01"), (100, "rrc00"), (100, "rrc01")]


# ---------------------------------------------------------------------------------------
# Telemetry: engine -> publisher -> store -> /metrics
# ---------------------------------------------------------------------------------------
class TestIngestTelemetry:
    def test_ingest_stats_shape(self):
        registry = ASNRegistry.from_asns([10, 20, 30, 40, 50])
        engine = StreamEngine(
            StreamConfig(window=WindowSpec(size=100), ingest_block_size=7),
            asn_registry=registry,
        )
        engine.run(MemorySource(varied_feed()))
        stats = engine.ingest_stats()
        assert stats["blocks_total"] == engine.stats.blocks_in > 0
        assert stats["events_total"] == len(varied_feed())
        assert sum(stats["events_per_block_buckets"]) == stats["blocks_total"]
        assert stats["dropped"]["unallocated_asn"] > 0

    def test_publisher_bridges_stats_into_store(self):
        store = MemoryBackend()
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        attach_store(engine, store)
        engine.run(MemorySource(varied_feed()))
        persisted = store.ingest_stats()
        assert persisted is not None
        assert persisted["blocks_total"] == engine.stats.blocks_in
        assert persisted["events_total"] == engine.stats.events_in

    def test_render_metrics_exposes_ingest_series(self):
        registry = ASNRegistry.from_asns([10, 20, 30, 40, 50])
        engine = StreamEngine(
            StreamConfig(window=WindowSpec(size=100)), asn_registry=registry
        )
        engine.run(MemorySource(varied_feed()))
        text = render_metrics(
            endpoints={},
            store_stats={"generation": 1},
            followers={},
            churn_total=0,
            churn_top=[],
            ingest=engine.ingest_stats(),
        )
        assert "repro_ingest_blocks_total" in text
        assert "repro_ingest_events_total" in text
        assert 'repro_ingest_events_per_block_bucket{le="+Inf"}' in text
        assert 'repro_ingest_sanitation_dropped_total{reason="unallocated_asn"}' in text
        # Histogram sum == total events: each block contributes its size once.
        count_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_ingest_events_per_block_count")
        )
        assert float(count_line.split()[-1]) == float(engine.stats.blocks_in)

    def test_render_metrics_without_ingest_stays_silent(self):
        text = render_metrics(
            endpoints={},
            store_stats={"generation": 1},
            followers={},
            churn_total=0,
            churn_top=[],
        )
        assert "repro_ingest" not in text
