"""Tests for AS characterisation (Figures 5 and 6) and the PEERING validation."""

import pytest

from repro.core.column import ColumnInference
from repro.eval.characterization import ConeDistribution, cone_cdf_by_class, peer_community_types
from repro.eval.peering import PEERING_ASN, PeeringExperiment
from repro.sanitize.sources import CommunitySource


class TestConeDistribution:
    def test_cdf_monotone_and_ends_at_one(self):
        distribution = ConeDistribution("test", sizes=[1, 1, 2, 10, 100])
        cdf = distribution.cdf()
        values = [p[1] for p in cdf]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_proportions_and_median(self):
        distribution = ConeDistribution("test", sizes=[1, 1, 1, 5, 50])
        assert distribution.proportion_leq(1) == pytest.approx(0.6)
        assert distribution.proportion_greater(10) == pytest.approx(0.2)
        assert distribution.median() == 1

    def test_empty_distribution(self):
        distribution = ConeDistribution("empty")
        assert distribution.cdf() == []
        assert distribution.proportion_leq(1) == 0.0
        assert distribution.median() == 0.0


class TestFigure6Data:
    @pytest.fixture(scope="class")
    def distributions(self, tiny_internet):
        tuples = tiny_internet.tuples_for_aggregate()
        result = ColumnInference().run(tuples)
        cones = tiny_internet.cones()
        return cone_cdf_by_class(result, cones), result

    def test_every_observed_as_is_in_exactly_one_class(self, distributions):
        per_dimension, result = distributions
        for dimension in ("tagging", "forwarding"):
            total = sum(len(d) for d in per_dimension[dimension].values())
            assert total == len(result.observed_ases)

    def test_taggers_are_larger_than_silent_ases(self, distributions):
        per_dimension, _ = distributions
        tagging = per_dimension["tagging"]
        if len(tagging["tagger"]) and len(tagging["silent"]):
            assert tagging["tagger"].median() >= tagging["silent"].median()
            assert tagging["tagger"].proportion_leq(1) < tagging["silent"].proportion_leq(1)

    def test_unclassified_ases_are_mostly_leafs(self, distributions):
        per_dimension, _ = distributions
        none = per_dimension["tagging"]["none"]
        assert none.proportion_leq(1) > 0.5


class TestFigure5Data:
    @pytest.fixture(scope="class")
    def profiles(self, tiny_internet):
        tuples = tiny_internet.tuples_for_aggregate()
        result = ColumnInference().run(tuples)
        return peer_community_types(tuples, result, registry=tiny_internet.topology.asn_registry)

    def test_profile_classification_matches_group(self, profiles):
        for code, entries in profiles.items():
            for profile in entries:
                assert profile.classification == code

    def test_silent_peers_show_no_peer_communities(self, profiles):
        for code in ("sf", "sc"):
            for profile in profiles.get(code, []):
                assert profile.count(CommunitySource.PEER) == 0

    def test_tagger_peers_show_peer_communities(self, profiles):
        tagger_profiles = profiles.get("tf", []) + profiles.get("tc", [])
        if tagger_profiles:
            assert any(p.count(CommunitySource.PEER) > 0 for p in tagger_profiles)

    def test_cleaner_peers_show_no_foreign_communities(self, profiles):
        for profile in profiles.get("sc", []):
            assert profile.count(CommunitySource.FOREIGN) == 0

    def test_profiles_sorted_by_total(self, profiles):
        for entries in profiles.values():
            totals = [p.total for p in entries]
            assert totals == sorted(totals)


class TestPeeringValidation:
    @pytest.fixture(scope="class")
    def experiment_and_result(self, tiny_internet):
        tuples = tiny_internet.tuples_for_aggregate()
        result = ColumnInference().run(tuples)
        experiment = PeeringExperiment(
            tiny_internet.topology,
            tiny_internet.roles,
            tiny_internet.paths_by_peer,
            n_pops=8,
            seed=3,
        )
        return experiment, result

    def test_observations_end_at_testbed_asn(self, experiment_and_result):
        experiment, _ = experiment_and_result
        observations = experiment.observations()
        assert observations
        for observation in observations:
            assert observation.path.origin == PEERING_ASN
            assert observation.pop_provider in experiment.pop_providers

    def test_community_pairs_are_unique_per_pop(self, experiment_and_result):
        experiment, _ = experiment_and_result
        first = experiment.pop_communities(0)
        second = experiment.pop_communities(1)
        assert first != second
        assert all(c.upper == PEERING_ASN for c in first)

    def test_present_paths_have_forward_only_ground_truth(self, experiment_and_result):
        experiment, _ = experiment_and_result
        for observation in experiment.observations():
            survives = all(
                experiment.roles[asn].is_forward for asn in observation.path.asns[:-1]
            )
            assert observation.has_testbed_communities == survives

    def test_validation_supports_the_inferences(self, experiment_and_result):
        experiment, result = experiment_and_result
        validation = experiment.validate(result, experiment="test")
        assert validation.absent_total > 0
        # When our communities are removed, a cleaner (or at least an
        # undecided AS) should be on the path in the vast majority of cases.
        supported = validation.absent_with_cleaner + validation.absent_with_undecided_only
        assert supported / validation.absent_total > 0.6
        # Contradictions (present communities despite an inferred cleaner)
        # must be rare.
        if validation.present_total:
            assert validation.present_cleaner_share < 0.2
        row = validation.table4_row()
        assert row["experiment"] == "test"
