"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.bgp.community import CommunitySet
from repro.bgp.messages import BGPUpdate, PathAttributes
from repro.bgp.path import ASPath
from repro.bgp.prefix import parse_prefix
from repro.cli import build_parser, main
from repro.core.export import ClassificationDatabase
from repro.mrt.encoder import MRTEncoder


@pytest.fixture()
def mrt_file(tmp_path):
    """A small MRT update file with a clear tagger/forwarder structure."""
    encoder = MRTEncoder()
    updates = [
        ([10], ["10:1"]),
        ([20], []),
        ([30], ["30:1"]),
        ([10, 30], ["10:1", "30:1"]),
        ([20, 30], ["30:1"]),
    ]
    for asns, comms in updates:
        encoder.write_update(
            BGPUpdate(
                peer_asn=asns[0],
                timestamp=0,
                announced=(parse_prefix("8.8.8.0/24"),),
                attributes=PathAttributes(
                    as_path=ASPath(asns), communities=CommunitySet.from_strings(comms)
                ),
            )
        )
    path = tmp_path / "updates.mrt"
    path.write_bytes(encoder.getvalue())
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_classify_defaults(self):
        args = build_parser().parse_args(["classify", "a.mrt"])
        assert args.threshold == 0.99
        assert args.format == "text"


class TestClassifyCommand:
    def test_classify_writes_text_database(self, mrt_file, tmp_path, capsys):
        output = tmp_path / "db.txt"
        assert main(["classify", str(mrt_file), "-o", str(output)]) == 0
        database = ClassificationDatabase.loads(output.read_text())
        assert database.classification_of(10).tagging.code == "t"
        assert database.classification_of(20).tagging.code == "s"
        assert "classified" in capsys.readouterr().err

    def test_classify_json_to_stdout(self, mrt_file, capsys):
        assert main(["classify", str(mrt_file), "--format", "json"]) == 0
        captured = capsys.readouterr()
        parsed = json.loads(captured.out)
        assert any(entry["asn"] == 30 and entry["class"].startswith("t") for entry in parsed)

    def test_classify_custom_threshold(self, mrt_file, tmp_path):
        output = tmp_path / "db.txt"
        assert main(["classify", str(mrt_file), "--threshold", "0.6", "-o", str(output)]) == 0
        assert output.exists()

    def test_classify_with_workers_matches_serial(self, mrt_file, tmp_path):
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        assert main(["classify", str(mrt_file), "-o", str(serial)]) == 0
        assert main(["classify", str(mrt_file), "--workers", "2", "-o", str(parallel)]) == 0
        assert parallel.read_text() == serial.read_text()


class TestShowCommand:
    def test_show_summary_and_single_asn(self, mrt_file, tmp_path, capsys):
        output = tmp_path / "db.txt"
        main(["classify", str(mrt_file), "-o", str(output)])
        assert main(["show", str(output)]) == 0
        summary = capsys.readouterr().out
        assert "ASes" in summary

        assert main(["show", str(output), "--asn", "10"]) == 0
        detail = capsys.readouterr().out
        assert "AS10" in detail and "class=t" in detail

    def test_show_missing_asn_returns_error(self, mrt_file, tmp_path, capsys):
        output = tmp_path / "db.txt"
        main(["classify", str(mrt_file), "-o", str(output)])
        assert main(["show", str(output), "--asn", "999"]) == 1

    def test_show_reads_json_format(self, mrt_file, tmp_path, capsys):
        output = tmp_path / "db.json"
        main(["classify", str(mrt_file), "--format", "json", "-o", str(output)])
        assert main(["show", str(output)]) == 0


class TestStreamCommand:
    def test_stream_with_workers_matches_serial(self, mrt_file, tmp_path, capsys):
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        assert main(["stream", str(mrt_file), "-o", str(serial)]) == 0
        assert main(["stream", str(mrt_file), "--workers", "2", "-o", str(parallel)]) == 0
        assert parallel.read_text() == serial.read_text()
        assert "streamed" in capsys.readouterr().err

    def test_stream_store_with_retention(self, mrt_file, tmp_path, capsys):
        from repro.service import SnapshotStore

        store_path = tmp_path / "stream.db"
        assert (
            main(
                [
                    "stream",
                    str(mrt_file),
                    "-o",
                    str(tmp_path / "db.txt"),
                    "--store",
                    str(store_path),
                    "--store-retention",
                    "1",
                ]
            )
            == 0
        )
        assert "window snapshots in" in capsys.readouterr().err
        with SnapshotStore(store_path) as store:
            assert store.retention is None  # retention is not persisted...
            assert len(store) == 1  # ...but the producer honored it
            assert store.latest().kind == "window"
