"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.bgp.community import CommunitySet
from repro.bgp.messages import BGPUpdate, PathAttributes
from repro.bgp.path import ASPath
from repro.bgp.prefix import parse_prefix
from repro.cli import build_parser, main
from repro.core.export import ClassificationDatabase
from repro.mrt.encoder import MRTEncoder


@pytest.fixture()
def mrt_file(tmp_path):
    """A small MRT update file with a clear tagger/forwarder structure."""
    encoder = MRTEncoder()
    updates = [
        ([10], ["10:1"]),
        ([20], []),
        ([30], ["30:1"]),
        ([10, 30], ["10:1", "30:1"]),
        ([20, 30], ["30:1"]),
    ]
    for asns, comms in updates:
        encoder.write_update(
            BGPUpdate(
                peer_asn=asns[0],
                timestamp=0,
                announced=(parse_prefix("8.8.8.0/24"),),
                attributes=PathAttributes(
                    as_path=ASPath(asns), communities=CommunitySet.from_strings(comms)
                ),
            )
        )
    path = tmp_path / "updates.mrt"
    path.write_bytes(encoder.getvalue())
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_classify_defaults(self):
        args = build_parser().parse_args(["classify", "a.mrt"])
        assert args.threshold == 0.99
        assert args.format == "text"


class TestClassifyCommand:
    def test_classify_writes_text_database(self, mrt_file, tmp_path, capsys):
        output = tmp_path / "db.txt"
        assert main(["classify", str(mrt_file), "-o", str(output)]) == 0
        database = ClassificationDatabase.loads(output.read_text())
        assert database.classification_of(10).tagging.code == "t"
        assert database.classification_of(20).tagging.code == "s"
        assert "classified" in capsys.readouterr().err

    def test_classify_json_to_stdout(self, mrt_file, capsys):
        assert main(["classify", str(mrt_file), "--format", "json"]) == 0
        captured = capsys.readouterr()
        parsed = json.loads(captured.out)
        assert any(entry["asn"] == 30 and entry["class"].startswith("t") for entry in parsed)

    def test_classify_custom_threshold(self, mrt_file, tmp_path):
        output = tmp_path / "db.txt"
        assert main(["classify", str(mrt_file), "--threshold", "0.6", "-o", str(output)]) == 0
        assert output.exists()

    def test_classify_with_workers_matches_serial(self, mrt_file, tmp_path):
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        assert main(["classify", str(mrt_file), "-o", str(serial)]) == 0
        assert main(["classify", str(mrt_file), "--workers", "2", "-o", str(parallel)]) == 0
        assert parallel.read_text() == serial.read_text()


class TestShowCommand:
    def test_show_summary_and_single_asn(self, mrt_file, tmp_path, capsys):
        output = tmp_path / "db.txt"
        main(["classify", str(mrt_file), "-o", str(output)])
        assert main(["show", str(output)]) == 0
        summary = capsys.readouterr().out
        assert "ASes" in summary

        assert main(["show", str(output), "--asn", "10"]) == 0
        detail = capsys.readouterr().out
        assert "AS10" in detail and "class=t" in detail

    def test_show_missing_asn_returns_error(self, mrt_file, tmp_path, capsys):
        output = tmp_path / "db.txt"
        main(["classify", str(mrt_file), "-o", str(output)])
        assert main(["show", str(output), "--asn", "999"]) == 1

    def test_show_reads_json_format(self, mrt_file, tmp_path, capsys):
        output = tmp_path / "db.json"
        main(["classify", str(mrt_file), "--format", "json", "-o", str(output)])
        assert main(["show", str(output)]) == 0


class TestStreamCommand:
    def test_stream_with_workers_matches_serial(self, mrt_file, tmp_path, capsys):
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        assert main(["stream", str(mrt_file), "-o", str(serial)]) == 0
        assert main(["stream", str(mrt_file), "--workers", "2", "-o", str(parallel)]) == 0
        assert parallel.read_text() == serial.read_text()
        assert "streamed" in capsys.readouterr().err

    def test_stream_store_with_retention(self, mrt_file, tmp_path, capsys):
        from repro.service import SnapshotStore

        store_path = tmp_path / "stream.db"
        assert (
            main(
                [
                    "stream",
                    str(mrt_file),
                    "-o",
                    str(tmp_path / "db.txt"),
                    "--store",
                    str(store_path),
                    "--store-retention",
                    "1",
                ]
            )
            == 0
        )
        assert "window snapshots in" in capsys.readouterr().err
        with SnapshotStore(store_path) as store:
            assert store.retention is None  # retention is not persisted...
            assert len(store) == 1  # ...but the producer honored it
            assert store.latest().kind == "window"


@pytest.fixture()
def windowed_mrt_file(tmp_path):
    """An MRT update feed whose timestamps span many streaming windows."""
    encoder = MRTEncoder()
    for index, stamp in enumerate(range(0, 500, 25)):
        encoder.write_update(
            BGPUpdate(
                peer_asn=10,
                timestamp=stamp,
                announced=(parse_prefix("8.8.8.0/24"),),
                attributes=PathAttributes(
                    as_path=ASPath([10, 20] if index % 2 else [10, 30]),
                    communities=CommunitySet.from_strings(["10:1"]),
                ),
            )
        )
    path = tmp_path / "windowed.mrt"
    path.write_bytes(encoder.getvalue())
    return path


class TestStreamResumeStore:
    def test_resume_store_has_no_duplicate_windows(
        self, windowed_mrt_file, tmp_path, capsys
    ):
        """`stream --resume --store` republishes nothing the store holds.

        Run 1 streams the feed to completion (checkpointing as it goes).
        The crash is simulated by deleting the newest checkpoint: the
        resumed run restores an older mid-stream state and re-emits every
        window closed after it -- windows the store already persisted.
        """
        from collections import Counter

        from repro.service import SnapshotStore

        store_path = tmp_path / "resume.db"
        checkpoint_dir = tmp_path / "ckpt"
        base = [
            "stream",
            str(windowed_mrt_file),
            "-o",
            str(tmp_path / "out.txt"),
            "--window",
            "50",
            "--checkpoint-dir",
            str(checkpoint_dir),
            "--checkpoint-every",
            "4",
            "--store",
            str(store_path),
        ]
        assert main(base) == 0
        capsys.readouterr()
        with SnapshotStore(store_path) as store:
            windows_after_first_run = [
                (meta.kind, meta.window_start, meta.window_end)
                for meta in store.snapshots()
            ]
        assert len(windows_after_first_run) > 3

        # Simulate the crash: the last pre-crash checkpoint is gone, so the
        # resume restores a state older than the store's newest window.
        checkpoints = sorted(checkpoint_dir.glob("*"))
        checkpoints[-1].unlink()

        assert main(base + ["--resume"]) == 0
        err = capsys.readouterr().err
        assert "resumed from" in err
        assert "duplicate windows skipped" in err
        with SnapshotStore(store_path) as store:
            keys = Counter(
                (meta.kind, meta.window_start, meta.window_end)
                for meta in store.snapshots()
            )
            assert all(count == 1 for count in keys.values()), keys
            # The resumed run added no windows the full run had not already
            # produced: the store history is exactly the first run's.
            assert list(keys) == windows_after_first_run

    def test_resume_with_lost_checkpoints_still_deduplicates(
        self, windowed_mrt_file, tmp_path, capsys
    ):
        """Dedup keys on the --resume *intent*, not on a found checkpoint.

        If the checkpoint directory is lost entirely, the resumed engine
        starts fresh -- but the store still holds every window, and the
        re-run must not append a second copy of any of them.
        """
        import shutil
        from collections import Counter

        from repro.service import SnapshotStore

        store_path = tmp_path / "lostckpt.db"
        checkpoint_dir = tmp_path / "ckpt"
        base = [
            "stream",
            str(windowed_mrt_file),
            "-o",
            str(tmp_path / "out.txt"),
            "--window",
            "50",
            "--checkpoint-dir",
            str(checkpoint_dir),
            "--store",
            str(store_path),
        ]
        assert main(base) == 0
        capsys.readouterr()
        with SnapshotStore(store_path) as store:
            first_run_count = len(store)
        shutil.rmtree(checkpoint_dir)

        assert main(base + ["--resume"]) == 0
        err = capsys.readouterr().err
        assert "resumed from" not in err  # no checkpoint survived
        assert "duplicate windows skipped" in err
        with SnapshotStore(store_path) as store:
            keys = Counter(
                (meta.kind, meta.window_start, meta.window_end)
                for meta in store.snapshots()
            )
            assert all(count == 1 for count in keys.values()), keys
            assert len(store) == first_run_count

    def test_plain_rerun_appends_without_dedup(self, windowed_mrt_file, tmp_path, capsys):
        """A plain re-run (no --resume) keeps the historical append-only
        semantics: every window is appended again, documenting why the
        dedup is tied to the resume path."""
        from repro.service import SnapshotStore

        store_path = tmp_path / "plain.db"
        base = [
            "stream",
            str(windowed_mrt_file),
            "-o",
            str(tmp_path / "out.txt"),
            "--window",
            "50",
            "--store",
            str(store_path),
        ]
        assert main(base) == 0
        with SnapshotStore(store_path) as store:
            first = len(store)
        assert main(base) == 0
        with SnapshotStore(store_path) as store:
            assert len(store) == 2 * first

    def test_store_closed_when_engine_fails_mid_run(
        self, windowed_mrt_file, tmp_path, monkeypatch
    ):
        """An engine crash must not leak the SQLite handle / WAL."""
        from repro.stream import StreamEngine

        store_path = tmp_path / "leak.db"
        wal_path = tmp_path / "leak.db-wal"

        def exploding_run(self, source, *, finish=True):
            # The store is open at this point: its WAL exists on disk.
            assert wal_path.exists()
            raise RuntimeError("engine blew up mid-run")

        monkeypatch.setattr(StreamEngine, "run", exploding_run)
        with pytest.raises(RuntimeError, match="blew up"):
            main(
                [
                    "stream",
                    str(windowed_mrt_file),
                    "--store",
                    str(store_path),
                ]
            )
        # Context management closed the store on the failure path: SQLite
        # checkpointed and removed the WAL on the last connection close.
        assert not wal_path.exists()
        assert store_path.exists()
