"""Tests for the collector simulation (projects, archives, MRT round trips)."""

import pytest

from repro.collectors.archive import ArchiveConfig, observations_from_mrt
from repro.collectors.collector import Collector, CollectorProject, merge_peer_sets
from repro.collectors.projects import DEFAULT_PROJECT_NAMES, build_default_projects
from repro.core.pipeline import InferencePipeline


class TestCollectorModel:
    def test_collector_membership(self):
        collector = Collector(name="rrc00", project="ripe", peer_asns=(10, 20))
        assert 10 in collector
        assert len(collector) == 2

    def test_project_rejects_foreign_collector(self):
        project = CollectorProject(name="ripe")
        with pytest.raises(ValueError):
            project.add_collector(Collector(name="x", project="routeviews", peer_asns=(1,)))

    def test_project_peer_union(self):
        project = CollectorProject(name="ripe")
        project.add_collector(Collector(name="a", project="ripe", peer_asns=(1, 2)))
        project.add_collector(Collector(name="b", project="ripe", peer_asns=(2, 3)))
        assert project.peer_asns() == {1, 2, 3}
        assert project.collector_names() == ["a", "b"]

    def test_merge_peer_sets(self):
        a = CollectorProject(name="a")
        a.add_collector(Collector(name="a0", project="a", peer_asns=(1,)))
        b = CollectorProject(name="b")
        b.add_collector(Collector(name="b0", project="b", peer_asns=(2,)))
        assert merge_peer_sets([a, b]) == {1, 2}


class TestDefaultProjects:
    def test_all_four_projects_built(self, topology):
        projects = build_default_projects(topology, seed=1)
        assert set(projects) == set(DEFAULT_PROJECT_NAMES)

    def test_pch_has_most_peers_but_no_ribs(self, topology):
        projects = build_default_projects(topology, seed=1)
        assert not projects["pch"].provides_ribs
        assert projects["ripe"].provides_ribs
        assert len(projects["pch"].peer_asns()) > len(projects["isolario"].peer_asns())

    def test_peers_are_topology_members(self, topology):
        projects = build_default_projects(topology, seed=1)
        for project in projects.values():
            assert project.peer_asns() <= set(topology.ases)


class TestArchives:
    @pytest.fixture()
    def ripe_archive(self, tiny_internet):
        config = ArchiveConfig(rib_snapshots_per_day=1, update_share=0.2, seed=5)
        return tiny_internet.archive_for("ripe", config=config)

    def test_day_archive_counts(self, ripe_archive):
        day = ripe_archive.generate_day(0)
        assert day.rib_entry_count > 0
        assert day.update_message_count > 0
        assert day.total_entries == day.rib_entry_count + day.update_message_count
        assert day.observations

    def test_observations_reference_project_collectors(self, ripe_archive, tiny_internet):
        day = ripe_archive.generate_day(0)
        collector_names = set(tiny_internet.projects["ripe"].collector_names())
        assert {obs.collector for obs in day.observations} <= collector_names

    def test_day_generation_is_deterministic(self, ripe_archive):
        a = ripe_archive.generate_day(1)
        b = ripe_archive.generate_day(1)
        assert a.rib_entry_count == b.rib_entry_count
        assert len(a.observations) == len(b.observations)

    def test_churn_makes_days_differ(self, ripe_archive):
        day0 = ripe_archive.generate_day(0)
        day1 = ripe_archive.generate_day(1)
        paths0 = {(o.peer_asn, o.path) for o in day0.observations}
        paths1 = {(o.peer_asn, o.path) for o in day1.observations}
        assert paths0 != paths1
        # ...but the overwhelming majority of routes are stable day to day.
        overlap = len(paths0 & paths1) / len(paths0)
        assert overlap > 0.9

    def test_pch_archive_has_no_rib_entries(self, tiny_internet):
        archive = tiny_internet.archive_for("pch", config=ArchiveConfig(seed=5))
        day = archive.generate_day(0)
        assert day.rib_entry_count == 0
        assert all(not obs.from_rib for obs in day.observations)

    def test_mrt_round_trip_preserves_observations(self, tiny_internet):
        config = ArchiveConfig(rib_snapshots_per_day=1, update_share=0.1, seed=5)
        archive = tiny_internet.archive_for("isolario", config=config)
        day = archive.generate_day(0)
        blobs = archive.day_to_mrt(day)
        decoded = []
        for collector, blob in blobs.items():
            decoded.extend(observations_from_mrt(blob, collector))
        assert len(decoded) == len(day.observations)
        original = {(o.peer_asn, o.path, o.communities, o.prefix) for o in day.observations}
        round_tripped = {(o.peer_asn, o.path, o.communities, o.prefix) for o in decoded}
        assert original == round_tripped

    def test_mrt_blobs_feed_the_pipeline(self, tiny_internet):
        config = ArchiveConfig(rib_snapshots_per_day=1, update_share=0.0, seed=5)
        archive = tiny_internet.archive_for("isolario", config=config)
        blobs = archive.day_to_mrt(archive.generate_day(0))
        pipeline = InferencePipeline(
            asn_registry=tiny_internet.topology.asn_registry,
            prefix_allocation=tiny_internet.topology.prefix_allocation,
        )
        outcome = pipeline.run_from_mrt(blobs)
        assert outcome.unique_tuples > 0
        assert outcome.result.summary()["tagger"] > 0
