"""Unit and behaviour tests for the column-based inference algorithm.

The hand-crafted cases mirror the worked examples of Sections 5.1 and 5.4 of
the paper; the scenario-level tests check the paper's headline claims
(100% precision on consistent behaviour, no classification of hidden ASes).
"""


from repro.bgp.announcement import PathCommTuple
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.core.classes import ForwardingClass, TaggingClass
from repro.core.column import ColumnInference
from repro.core.thresholds import Thresholds
from repro.usage.scenarios import ScenarioName


def tuples_from(*items):
    """Build (path, comm) tuples from (path asns, community strings) pairs."""
    return [
        PathCommTuple(ASPath(asns), CommunitySet.from_strings(comms)) for asns, comms in items
    ]


class TestHandCraftedCases:
    def test_peer_tagging_is_trivially_observable(self):
        # C <- X : X:* and C <- Y : empty  =>  X tagger, Y silent (Section 5.1).
        result = ColumnInference().run(
            tuples_from(([10], ["10:1"]), ([20], []))
        )
        assert result.classification_of(10).tagging is TaggingClass.TAGGER
        assert result.classification_of(20).tagging is TaggingClass.SILENT

    def test_downstream_tagger_reveals_forwarding(self):
        # C <- X <- Z with Z:* visible reveals X's forwarding behaviour once Z
        # is known to be a tagger (here: because Z also peers with a collector,
        # which is how knowledge bootstraps in real data, Section 5.6).
        result = ColumnInference().run(
            tuples_from(([30], ["30:1"]), ([10, 30], ["30:1"]))
        )
        assert result.classification_of(30).tagging is TaggingClass.TAGGER
        assert result.classification_of(10).tagging is TaggingClass.SILENT
        assert result.classification_of(10).forwarding is ForwardingClass.FORWARD

    def test_isolated_pair_is_a_race_condition(self):
        # Without any other vantage on Z, the same situation cannot be
        # resolved: Cond1 for Z needs X forward, Cond2 for X needs Z tagger
        # (Section 5.2.1) - the algorithm deliberately returns none.
        result = ColumnInference().run(tuples_from(([10, 30], ["30:1"])))
        assert result.classification_of(30).tagging is TaggingClass.NONE
        assert result.classification_of(10).forwarding is ForwardingClass.NONE

    def test_hidden_behaviour_is_not_classified(self):
        # C <- X : empty, X's downstream Z cannot be judged (Section 5.1.2):
        # we cannot tell whether Z is silent or X is a cleaner.
        result = ColumnInference().run(tuples_from(([10, 30], [])))
        assert result.classification_of(30).tagging is TaggingClass.NONE
        assert result.classification_of(10).forwarding is ForwardingClass.NONE

    def test_cleaner_detected_with_known_tagger(self):
        # Z is a known tagger (seen directly at a collector); Y hides Z's tag.
        result = ColumnInference().run(
            tuples_from(
                ([30], ["30:1"]),          # Z peers with a collector and tags
                ([10, 30], ["30:1"]),      # X forwards Z's tag
                ([20, 30], []),            # Y removes it
            )
        )
        assert result.classification_of(30).tagging is TaggingClass.TAGGER
        assert result.classification_of(10).forwarding is ForwardingClass.FORWARD
        assert result.classification_of(20).forwarding is ForwardingClass.CLEANER

    def test_counting_behind_cleaner_is_skipped(self):
        # Section 5.1.2: occurrences behind a cleaner must not count as silent.
        result = ColumnInference().run(
            tuples_from(
                ([30], ["30:1"]),
                ([20, 30], []),        # 20 becomes a cleaner
                ([20, 40], []),        # 40 is hidden behind cleaner 20
            )
        )
        assert result.classification_of(20).forwarding is ForwardingClass.CLEANER
        assert result.classification_of(40).tagging is TaggingClass.NONE

    def test_race_condition_yields_none(self):
        # Single path C <- X <- Y with no information: neither can be judged
        # beyond X's own tagging (Section 5.2.1).
        result = ColumnInference().run(tuples_from(([10, 20], [])))
        assert result.classification_of(10).tagging is TaggingClass.SILENT
        assert result.classification_of(10).forwarding is ForwardingClass.NONE
        assert result.classification_of(20).tagging is TaggingClass.NONE

    def test_selective_tagging_towards_collector_causes_cleaner_misreading(self):
        # Section 5.4: Z tags only towards the collector; X then looks like a
        # cleaner because Z's tag is missing behind it.
        result = ColumnInference().run(
            tuples_from(
                ([30], ["30:1"]),
                ([30], ["30:1"]),
                ([10, 30], []),
            )
        )
        assert result.classification_of(30).tagging is TaggingClass.TAGGER
        assert result.classification_of(10).forwarding is ForwardingClass.CLEANER

    def test_conflicting_evidence_yields_undecided(self):
        # The same peer sometimes tags and sometimes does not (half/half).
        items = tuples_from(*([([10], ["10:1"])] * 5 + [([10], [])] * 5))
        result = ColumnInference().run(items)
        assert result.classification_of(10).tagging is TaggingClass.UNDECIDED

    def test_lower_threshold_resolves_undecided(self):
        items = tuples_from(*([([10], ["10:1"])] * 8 + [([10], [])] * 2))
        strict = ColumnInference(Thresholds.uniform(0.99)).run(items)
        relaxed = ColumnInference(Thresholds.uniform(0.75)).run(items)
        assert strict.classification_of(10).tagging is TaggingClass.UNDECIDED
        assert relaxed.classification_of(10).tagging is TaggingClass.TAGGER

    def test_empty_input(self):
        result = ColumnInference().run([])
        assert len(result) == 0
        assert result.summary()["ases_observed"] == 0

    def test_max_columns_limit(self):
        inference = ColumnInference(max_columns=1)
        result = inference.run(tuples_from(([10, 20, 30], ["30:1"])))
        assert inference.report.columns_processed == 1
        assert result.classification_of(20).tagging is TaggingClass.NONE

    def test_report_tracks_increments(self):
        inference = ColumnInference()
        inference.run(tuples_from(([10], ["10:1"]), ([20], [])))
        assert inference.report.total_tagging_counts == 2


class TestScenarioBehaviour:
    def test_perfect_precision_on_random_scenario(self, random_dataset, random_classification):
        for asn in random_classification.observed_ases:
            role = random_dataset.roles.get(asn)
            classification = random_classification.classification_of(asn)
            if classification.tagging is TaggingClass.TAGGER:
                assert role.is_tagger
            elif classification.tagging is TaggingClass.SILENT:
                assert role.is_silent
            if classification.forwarding is ForwardingClass.FORWARD:
                assert role.is_forward
            elif classification.forwarding is ForwardingClass.CLEANER:
                assert role.is_cleaner

    def test_hidden_ases_are_not_classified(self, random_dataset, random_classification):
        for asn in random_dataset.visibility.tagging_hidden:
            assert random_classification.classification_of(asn).tagging in (
                TaggingClass.NONE,
                TaggingClass.UNDECIDED,
            )

    def test_leaf_ases_have_no_forwarding_class(self, random_dataset, random_classification):
        for asn in list(random_dataset.leaf_ases)[:300]:
            assert random_classification.classification_of(asn).forwarding is ForwardingClass.NONE

    def test_alltf_classifies_most_ases_as_taggers(self, alltf_dataset):
        result = ColumnInference().run(alltf_dataset.tuples)
        summary = result.summary()
        assert summary["silent"] == 0
        assert summary["cleaner"] == 0
        assert summary["tagger"] > 0.9 * summary["ases_observed"]

    def test_alltc_classifies_only_peers(self, scenario_builder):
        dataset = scenario_builder.build(ScenarioName.ALLTC, seed=7)
        result = ColumnInference().run(dataset.tuples)
        taggers = set(result.ases_with_tagging(TaggingClass.TAGGER))
        assert taggers == dataset.collector_peers
        assert result.summary()["silent"] == 0

    def test_undecided_appears_under_noise(self, scenario_builder):
        dataset = scenario_builder.build(ScenarioName.RANDOM_NOISE, seed=7)
        result = ColumnInference().run(dataset.tuples)
        assert result.summary()["tagging_undecided"] > 0
