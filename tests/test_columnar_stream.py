"""Columnar streaming: engine conformance, memoised sanitation, dedup state.

The streaming engine may run either representation; everything observable —
window snapshots, sanitation statistics, checkpoints, final classification —
must be identical.  These tests drive both representations over the same
feeds and compare the lot, plus the checkpoint/restore and worker-memo
machinery specific to columnar mode.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.community import Community, CommunitySet
from repro.bgp.path import ASPath
from repro.bgp.prefix import Prefix, PrefixAllocation
from repro.core.tuples import TupleTable
from repro.parallel.stream import ParallelStreamEngine
from repro.sanitize.filters import TupleDeduper
from repro.stream.checkpoint import CheckpointManager
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.sharding import ShardWorker
from repro.stream.sources import ScenarioSource
from repro.stream.window import WindowPolicy, WindowSpec


def _random_tuples(rng: random.Random, count: int) -> list:
    tuples = []
    for _ in range(count):
        asns = tuple(rng.randint(100, 130) for _ in range(rng.randint(1, 6)))
        comms = [
            Community(rng.choice(list(asns) + [999]), rng.randint(0, 50))
            for _ in range(rng.randint(0, 4))
        ]
        tuples.append(PathCommTuple(ASPath(asns), CommunitySet(comms)))
    return tuples


def _snapshot_key(engine: StreamEngine) -> list:
    return [
        (
            snapshot.window_start,
            snapshot.window_end,
            snapshot.events_total,
            snapshot.unique_tuples,
            snapshot.result.store.state_dict(),
            sorted(snapshot.result.observed_ases),
            dict(snapshot.changed),
        )
        for snapshot in engine.snapshots
    ]


class TestEngineConformance:
    @pytest.mark.parametrize("policy", [WindowPolicy.CUMULATIVE, WindowPolicy.SLIDING])
    @pytest.mark.parametrize("algorithm", ["column", "row"])
    def test_columnar_equals_object(self, policy, algorithm):
        rng = random.Random(11)
        source = list(
            ScenarioSource(_random_tuples(rng, 30), duration=3600, repeat=3)
        )
        spec = WindowSpec(
            size=300,
            policy=policy,
            horizon=600 if policy is WindowPolicy.SLIDING else None,
        )
        outcomes = {}
        for representation in ("object", "columnar"):
            config = StreamConfig(
                window=spec, shards=3, algorithm=algorithm, representation=representation
            )
            engine = StreamEngine(config)
            final = engine.run(iter(source))
            outcomes[representation] = (
                final.store.state_dict(),
                sorted(final.observed_ases),
                _snapshot_key(engine),
                engine.sanitation_stats().as_dict(),
                engine.unique_tuples,
            )
        assert outcomes["columnar"] == outcomes["object"]

    def test_checkpoint_restore_mid_stream(self, tmp_path):
        rng = random.Random(12)
        source = list(
            ScenarioSource(_random_tuples(rng, 25), duration=3600, repeat=3)
        )
        spec = WindowSpec(size=300, policy=WindowPolicy.SLIDING, horizon=600)
        config = StreamConfig(
            window=spec, shards=2, algorithm="column", representation="columnar"
        )

        uninterrupted = StreamEngine(config)
        expected = uninterrupted.run(iter(source))

        manager = CheckpointManager(tmp_path)
        engine = StreamEngine(config, checkpoints=manager)
        cut = len(source) // 2
        for observation in source[:cut]:
            engine.ingest(observation)
        engine.checkpoint()
        restored = StreamEngine.restore(manager)
        assert restored.config.representation == "columnar"
        for observation in source[cut:]:
            restored.ingest(observation)
        final = restored.finish()
        assert final.store.state_dict() == expected.store.state_dict()
        assert final.observed_ases == expected.observed_ases

    def test_pre_representation_checkpoint_defaults_to_object(self):
        config = StreamConfig()
        # Simulate a checkpoint written before the representation field
        # existed: old pickled StreamConfig instances lack the attribute.
        del config.__dict__["representation"]
        engine = StreamEngine(config)
        assert engine._table is None

    def test_parallel_engine_rejects_columnar(self):
        config = StreamConfig(representation="columnar")
        with pytest.raises(ValueError, match="columnar"):
            ParallelStreamEngine(config)

    def test_config_rejects_unknown_representation(self):
        with pytest.raises(ValueError):
            StreamConfig(representation="sparse")


def _observation(item: PathCommTuple, timestamp: int) -> RouteObservation:
    return RouteObservation(
        collector="test",
        peer_asn=item.peer,
        prefix=Prefix.ipv4((20 << 24) | ((item.origin % 65536) << 8), 24),
        path=item.path,
        communities=item.communities,
        timestamp=timestamp,
    )


class TestShardWorkerMemo:
    def test_memo_replays_stats_event_for_event(self):
        rng = random.Random(13)
        tuples = _random_tuples(rng, 20)
        observations = [
            _observation(item, 100 + index)
            for index, item in enumerate(tuples * 3)  # 2/3 duplicates: memo hits
        ]
        plain = ShardWorker(0)
        columnar = ShardWorker(0, table=TupleTable())
        for observation in observations:
            plain.process(observation)
            columnar.process(observation)
        assert columnar.sanitizer.stats.as_dict() == plain.sanitizer.stats.as_dict()
        assert columnar.events_processed == plain.events_processed
        assert columnar.unique_tuples == plain.unique_tuples

    def test_memo_disabled_with_mutable_allocation_context(self):
        allocation = PrefixAllocation.default_internet()
        worker = ShardWorker(0, table=TupleTable(), prefix_allocation=allocation)
        item = PathCommTuple(ASPath((101, 102)), CommunitySet())
        worker.process(_observation(item, 1))
        worker.process(_observation(item, 2))
        assert not worker._memo  # lookups stay live against the registry
        assert worker.sanitizer.stats.observations_in == 2

    def test_memo_cleared_on_state_restore(self):
        worker = ShardWorker(0, table=TupleTable())
        item = PathCommTuple(ASPath((101, 102)), CommunitySet())
        worker.process(_observation(item, 1))
        assert worker._memo
        worker.load_state_dict(worker.state_dict())
        assert not worker._memo


class TestTupleDeduperSnapshots:
    def test_snapshot_stays_frozen_after_further_adds(self):
        """Regression: state_dict() once returned the live seen-set, so
        tuples added after a checkpoint leaked into the written snapshot."""
        deduper = TupleDeduper()
        first = PathCommTuple(ASPath((1, 2)), CommunitySet())
        second = PathCommTuple(ASPath((3, 4)), CommunitySet())
        deduper.add(_observation(first, 1))
        snapshot = deduper.state_dict()
        assert len(snapshot) == 1
        deduper.add(_observation(second, 2))
        assert len(snapshot) == 1  # must not grow with the live deduper
        assert len(deduper) == 2

    def test_from_state_does_not_adopt_callers_set(self):
        seen = {(ASPath((1, 2)), CommunitySet())}
        deduper = TupleDeduper.from_state(seen)
        seen.clear()
        assert len(deduper) == 1

    def test_add_key_dedupes_arbitrary_keys(self):
        deduper = TupleDeduper()
        assert deduper.add_key((0, 0)) is True
        assert deduper.add_key((0, 0)) is False
        assert (0, 0) in deduper
        assert deduper.discard([(0, 0)]) == 1
        assert deduper.add_key((0, 0)) is True
