"""Unit tests for repro.bgp.community."""

import pytest

from repro.bgp.community import (
    Community,
    CommunitySet,
    LargeCommunity,
    WellKnownCommunity,
    make_community,
    parse_community,
)


class TestCommunity:
    def test_parse_regular(self):
        community = parse_community("3356:100")
        assert isinstance(community, Community)
        assert community.upper == 3356
        assert community.lower == 100
        assert not community.is_large

    def test_parse_large(self):
        community = parse_community("200000:1:2")
        assert isinstance(community, LargeCommunity)
        assert community.upper == 200000
        assert community.is_large

    def test_regular_value_round_trip(self):
        community = Community(3356, 999)
        assert Community.from_value(community.value) == community

    def test_regular_field_bounds(self):
        with pytest.raises(ValueError):
            Community(70000, 0)
        with pytest.raises(ValueError):
            Community(0, 70000)

    def test_large_field_bounds(self):
        with pytest.raises(ValueError):
            LargeCommunity(2**32, 0, 0)

    def test_str_round_trip(self):
        for text in ("3356:100", "200000:1:2", "0:0"):
            assert str(parse_community(text)) == text

    def test_invalid_strings(self):
        with pytest.raises(ValueError):
            Community.from_string("3356")
        with pytest.raises(ValueError):
            LargeCommunity.from_string("1:2")

    def test_well_known_detection(self):
        assert Community.from_value(int(WellKnownCommunity.NO_EXPORT)).is_well_known
        assert not Community(3356, 100).is_well_known
        assert WellKnownCommunity.is_well_known(0xFFFF029A)

    def test_make_community_picks_flavour_by_asn(self):
        assert not make_community(3356, 1).is_large
        assert make_community(200000, 1).is_large

    def test_make_community_forced_large(self):
        assert make_community(3356, 1, large=True).is_large

    def test_ordering(self):
        assert Community(1, 2) < Community(1, 3) < Community(2, 0)


class TestCommunitySet:
    def test_empty_set_is_falsy_and_shared(self):
        assert not CommunitySet.empty()
        assert len(CommunitySet.empty()) == 0
        assert CommunitySet.empty() == CommunitySet()

    def test_from_strings_and_contains(self):
        communities = CommunitySet.from_strings(["3356:1", "1299:2:3"])
        assert parse_community("3356:1") in communities
        assert parse_community("3356:2") not in communities
        assert len(communities) == 2

    def test_union_is_immutable(self):
        a = CommunitySet.from_strings(["1:1"])
        b = CommunitySet.from_strings(["2:2"])
        union = a | b
        assert len(union) == 2
        assert len(a) == 1 and len(b) == 1

    def test_union_with_empty_returns_other(self):
        a = CommunitySet.from_strings(["1:1"])
        assert (a | CommunitySet.empty()) == a
        assert (CommunitySet.empty() | a) == a

    def test_add_and_difference(self):
        a = CommunitySet.from_strings(["1:1"])
        b = a.add(parse_community("2:2"))
        assert len(b) == 2
        assert b.difference(a).to_strings() == ["2:2"]

    def test_add_existing_returns_same_content(self):
        a = CommunitySet.from_strings(["1:1"])
        assert a.add(parse_community("1:1")) == a

    def test_upper_fields_and_has_upper(self):
        communities = CommunitySet.from_strings(["3356:1", "3356:2", "1299:9:9"])
        assert communities.upper_fields() == {3356, 1299}
        assert communities.has_upper(3356)
        assert not communities.has_upper(174)

    def test_with_upper_filters(self):
        communities = CommunitySet.from_strings(["3356:1", "1299:2"])
        assert communities.with_upper(3356).to_strings() == ["3356:1"]

    def test_regular_and_large_partitions(self):
        communities = CommunitySet.from_strings(["3356:1", "1299:2:3"])
        assert len(communities.regular()) == 1
        assert len(communities.large()) == 1

    def test_equality_with_plain_sets(self):
        communities = CommunitySet.from_strings(["1:1"])
        assert communities == {parse_community("1:1")}

    def test_hashable(self):
        a = CommunitySet.from_strings(["1:1", "2:2"])
        b = CommunitySet.from_strings(["2:2", "1:1"])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_sorted_is_deterministic(self):
        communities = CommunitySet.from_strings(["2:2", "1:1", "1:1:1"])
        assert communities.to_strings() == ["1:1", "2:2", "1:1:1"]
