"""Unit tests for customer cones (repro.topology.cone)."""

import pytest

from repro.topology.cone import CustomerCones
from repro.topology.relationships import ASRelationships


@pytest.fixture()
def chain():
    """1 -> 2 -> 3 -> 4 plus a side customer 5 of 2."""
    rel = ASRelationships()
    rel.add_p2c(1, 2)
    rel.add_p2c(2, 3)
    rel.add_p2c(3, 4)
    rel.add_p2c(2, 5)
    return rel


class TestHandcraftedCones:
    def test_leaf_cone_is_one(self, chain):
        cones = CustomerCones(chain)
        assert cones.cone_size(4) == 1
        assert cones.cone(4) == {4}

    def test_cone_includes_indirect_customers(self, chain):
        cones = CustomerCones(chain)
        assert cones.cone(2) == {2, 3, 4, 5}
        assert cones.cone_size(1) == 5

    def test_in_cone(self, chain):
        cones = CustomerCones(chain)
        assert cones.in_cone(1, 4)
        assert not cones.in_cone(3, 5)
        assert not cones.in_cone(1, 999)

    def test_cone_sizes_bulk(self, chain):
        cones = CustomerCones(chain)
        sizes = cones.cone_sizes()
        assert sizes == {1: 5, 2: 4, 3: 2, 4: 1, 5: 1}

    def test_largest(self, chain):
        cones = CustomerCones(chain)
        assert cones.largest(2) == [1, 2]

    def test_peering_does_not_extend_cone(self):
        rel = ASRelationships()
        rel.add_p2c(1, 2)
        rel.add_p2p(2, 3)
        cones = CustomerCones(rel)
        assert cones.cone(1) == {1, 2}

    def test_multihomed_customer_counted_once(self):
        rel = ASRelationships()
        rel.add_p2c(1, 3)
        rel.add_p2c(2, 3)
        rel.add_p2c(1, 2)
        cones = CustomerCones(rel)
        assert cones.cone_size(1) == 3


class TestGeneratedTopologyCones:
    def test_leaf_ases_have_cone_one(self, topology):
        cones = CustomerCones(topology.relationships, topology.asns())
        for asn in topology.leaf_asns()[:50]:
            assert cones.cone_size(asn) == 1

    def test_tier1_cones_are_largest(self, topology):
        from repro.topology.generator import ASTier

        cones = CustomerCones(topology.relationships, topology.asns())
        sizes = cones.cone_sizes()
        tier1_mean = sum(sizes[a] for a in topology.by_tier(ASTier.TIER1)) / len(topology.by_tier(ASTier.TIER1))
        stub_mean = sum(sizes[a] for a in topology.by_tier(ASTier.STUB)) / len(topology.by_tier(ASTier.STUB))
        assert tier1_mean > 10 * stub_mean

    def test_provider_cone_contains_customer_cone(self, topology):
        cones = CustomerCones(topology.relationships, topology.asns())
        checked = 0
        for provider, customer in topology.relationships.p2c_edges():
            assert cones.cone(customer) <= cones.cone(provider)
            checked += 1
            if checked >= 200:
                break

    def test_deep_chain_does_not_overflow_recursion(self):
        rel = ASRelationships()
        for i in range(3000):
            rel.add_p2c(i, i + 1)
        cones = CustomerCones(rel)
        assert cones.cone_size(0) == 3001
