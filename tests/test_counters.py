"""Unit tests for counters, thresholds, classes, and conditions."""

import pytest

from repro.bgp.path import ASPath
from repro.core.classes import ForwardingClass, TaggingClass, UNCLASSIFIED, UsageClassification
from repro.core.conditions import cond1, cond2, find_downstream_tagger
from repro.core.counters import ASCounters, CounterStore
from repro.core.thresholds import Thresholds


class TestThresholds:
    def test_defaults_are_99_percent(self):
        thresholds = Thresholds()
        assert thresholds.tagger == thresholds.cleaner == 0.99

    def test_uniform(self):
        thresholds = Thresholds.uniform(0.8)
        assert thresholds.silent == 0.8 and thresholds.forward == 0.8

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Thresholds(tagger=0.4)
        with pytest.raises(ValueError):
            Thresholds(cleaner=1.01)

    def test_partial_overrides(self):
        thresholds = Thresholds().with_tagging(0.9)
        assert thresholds.tagger == 0.9
        assert thresholds.forward == 0.99
        forwarding = Thresholds().with_forwarding(0.8)
        assert forwarding.cleaner == 0.8


class TestUsageClassification:
    def test_code_round_trip(self):
        for code in ("tf", "sc", "un", "nn", "uu", "tn"):
            assert UsageClassification.from_code(code).code == code

    def test_invalid_code_rejected(self):
        with pytest.raises(ValueError):
            UsageClassification.from_code("t")
        with pytest.raises(ValueError):
            UsageClassification.from_code("xy")

    def test_full_partial_empty(self):
        assert UsageClassification.from_code("tf").is_full
        assert UsageClassification.from_code("tn").is_partial
        assert UsageClassification.from_code("nu").is_empty
        assert UNCLASSIFIED.is_empty

    def test_from_role(self):
        from repro.usage.roles import ForwardingRole, TaggingRole

        assert TaggingClass.from_role(TaggingRole.TAGGER) is TaggingClass.TAGGER
        assert ForwardingClass.from_role(ForwardingRole.CLEANER) is ForwardingClass.CLEANER


class TestASCounters:
    def test_shares(self):
        counters = ASCounters(tagger=99, silent=1, forward=3, cleaner=1)
        assert counters.tagger_share() == pytest.approx(0.99)
        assert counters.silent_share() == pytest.approx(0.01)
        assert counters.forward_share() == pytest.approx(0.75)
        assert counters.cleaner_share() == pytest.approx(0.25)

    def test_shares_without_evidence(self):
        counters = ASCounters()
        assert counters.tagger_share() == 0.0
        assert counters.forward_share() == 0.0

    def test_merge(self):
        merged = ASCounters(1, 2, 3, 4).merge(ASCounters(10, 20, 30, 40))
        assert merged.as_tuple() == (11, 22, 33, 44)

    def test_decay_rounds_half_up(self):
        counters = ASCounters(tagger=99, silent=1, forward=3, cleaner=1)
        aged = counters.decay(0.5)
        # Truncation would erase the minority counters entirely (1 -> 0).
        assert aged.as_tuple() == (50, 1, 2, 1)

    def test_decay_share_stability_under_repeated_decay(self):
        """Repeated decay must not skew the share ratios towards 1.0.

        With truncating decay, (99, 1) becomes (49, 0) after one round and
        the tagger share snaps from 0.99 to 1.0, flipping an AS across the
        0.99 threshold on nothing but aging.
        """
        counters = ASCounters(tagger=99, silent=1)
        for _ in range(4):
            counters = counters.decay(0.5)
            assert counters.silent >= 1
            assert counters.tagger_share() < 1.0
        # Shares stay in the same regime as the undecayed evidence.
        assert counters.tagger_share() == pytest.approx(0.99, abs=0.15)

    def test_decay_can_still_reach_zero(self):
        assert ASCounters(tagger=1).decay(0.4).is_zero
        assert ASCounters(tagger=5, silent=3).decay(0.0).is_zero


class TestCounterStore:
    def test_counting_and_lookup(self):
        store = CounterStore()
        store.count_tagger(10)
        store.count_tagger(10)
        store.count_silent(10)
        assert store.get(10).as_tuple() == (2, 1, 0, 0)
        assert store.get(99).as_tuple() == (0, 0, 0, 0)
        assert 10 in store and 99 not in store

    def test_threshold_queries(self):
        store = CounterStore(Thresholds.uniform(0.9))
        for _ in range(9):
            store.count_tagger(1)
        store.count_silent(1)
        assert store.is_tagger(1)
        assert not store.is_silent(1)

    def test_no_evidence_means_no_class(self):
        store = CounterStore()
        assert not store.is_tagger(5)
        assert not store.is_forward(5)
        assert store.get_tagging(5) is TaggingClass.NONE
        assert store.get_forwarding(5) is ForwardingClass.NONE

    def test_undecided_when_between_thresholds(self):
        store = CounterStore(Thresholds.uniform(0.99))
        store.count_tagger(1)
        store.count_silent(1)
        assert store.get_tagging(1) is TaggingClass.UNDECIDED

    def test_get_class_combines_both(self):
        store = CounterStore()
        store.count_tagger(1)
        store.count_forward(1)
        assert store.get_class(1).code == "tf"

    def test_classify_all(self):
        store = CounterStore()
        store.count_silent(1)
        store.count_cleaner(2)
        classes = store.classify_all()
        assert classes[1].code == "sn"
        assert classes[2].code == "nc"

    def test_exactly_at_threshold_counts(self):
        store = CounterStore(Thresholds.uniform(0.99))
        for _ in range(99):
            store.count_forward(7)
        store.count_cleaner(7)
        assert store.is_forward(7)

    def test_merge_from_sums_disjoint_and_shared_ases(self):
        left = CounterStore()
        left.apply_delta({10: (1, 2, 3, 4), 20: (5, 0, 0, 0)})
        right = CounterStore()
        right.apply_delta({10: (10, 20, 30, 40), 30: (0, 0, 7, 0)})
        left.merge_from(right)
        assert left.get(10).as_tuple() == (11, 22, 33, 44)
        assert left.get(20).as_tuple() == (5, 0, 0, 0)
        assert left.get(30).as_tuple() == (0, 0, 7, 0)

    def test_merged_shards_equal_single_store(self):
        """Merging per-shard stores is the same as counting in one process."""
        whole = CounterStore()
        shards = [CounterStore() for _ in range(3)]
        for i, asn in enumerate([10, 20, 30, 10, 20, 10]):
            whole.count_tagger(asn)
            shards[i % 3].count_tagger(asn)
            whole.count_cleaner(asn + 1)
            shards[i % 3].count_cleaner(asn + 1)
        merged = CounterStore.merged(shards, whole.thresholds)
        assert merged.state_dict() == whole.state_dict()


class TestConditions:
    def make_store(self, forward_asns=(), tagger_asns=(), cleaner_asns=()):
        store = CounterStore()
        for asn in forward_asns:
            store.count_forward(asn)
        for asn in tagger_asns:
            store.count_tagger(asn)
        for asn in cleaner_asns:
            store.count_cleaner(asn)
        return store

    def test_cond1_trivial_at_index_one(self):
        store = self.make_store()
        assert cond1(ASPath([1, 2, 3]), 1, store)

    def test_cond1_requires_all_upstream_forward(self):
        path = ASPath([1, 2, 3])
        assert cond1(path, 3, self.make_store(forward_asns=[1, 2]))
        assert not cond1(path, 3, self.make_store(forward_asns=[1]))
        assert not cond1(path, 3, self.make_store(forward_asns=[1], cleaner_asns=[2]))

    def test_cond2_finds_nearest_tagger(self):
        path = ASPath([1, 2, 3, 4])
        store = self.make_store(forward_asns=[2, 3], tagger_asns=[4])
        assert find_downstream_tagger(path, 1, store) == 4
        assert cond2(path, 1, store)

    def test_cond2_blocked_by_unknown_intermediate(self):
        path = ASPath([1, 2, 3, 4])
        store = self.make_store(tagger_asns=[4])
        assert find_downstream_tagger(path, 1, store) is None

    def test_cond2_tagger_right_after_index(self):
        path = ASPath([1, 2, 3])
        store = self.make_store(tagger_asns=[2])
        assert find_downstream_tagger(path, 1, store) == 2

    def test_cond2_fails_at_origin(self):
        path = ASPath([1, 2, 3])
        store = self.make_store(tagger_asns=[1, 2, 3], forward_asns=[1, 2, 3])
        assert find_downstream_tagger(path, 3, store) is None
