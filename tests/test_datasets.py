"""Tests for the synthetic Internet bundle and the Table 1 statistics."""

import pytest

from repro.collectors.archive import ArchiveConfig
from repro.datasets.stats import compute_statistics, format_table
from repro.datasets.synthetic import AGGREGATE_PROJECTS, SyntheticConfig


class TestSyntheticInternet:
    def test_build_produces_all_components(self, tiny_internet):
        assert len(tiny_internet.topology) > 100
        assert set(tiny_internet.projects) == {"ripe", "routeviews", "isolario", "pch"}
        assert len(tiny_internet.roles) == len(tiny_internet.topology)
        assert tiny_internet.paths_by_peer

    def test_collector_peers_union(self, tiny_internet):
        all_peers = tiny_internet.collector_peers()
        ripe_peers = tiny_internet.collector_peers(["ripe"])
        assert set(ripe_peers) <= set(all_peers)
        assert set(all_peers) <= set(tiny_internet.paths_by_peer)

    def test_project_names_order_and_pch_flag(self, tiny_internet):
        assert tiny_internet.project_names()[-1] == "pch"
        assert "pch" not in tiny_internet.project_names(include_pch=False)

    def test_tuples_are_unique(self, tiny_internet):
        tuples = tiny_internet.tuples_for_project("isolario")
        assert len({(t.path, t.communities) for t in tuples}) == len(tuples)

    def test_aggregate_has_at_least_as_many_tuples_as_any_member(self, tiny_internet):
        aggregate = len(tiny_internet.tuples_for_aggregate())
        for name in AGGREGATE_PROJECTS:
            assert aggregate >= len(tiny_internet.tuples_for_project(name))

    def test_tuples_respect_peer_membership(self, tiny_internet):
        peers = set(tiny_internet.projects["ripe"].peer_asns())
        for item in tiny_internet.tuples_for_project("ripe")[:200]:
            assert item.peer in peers

    def test_cones_accessor(self, tiny_internet):
        cones = tiny_internet.cones()
        assert cones.cone_size(tiny_internet.topology.leaf_asns()[0]) == 1

    def test_scale_presets(self):
        small = SyntheticConfig.small()
        default = SyntheticConfig.default()
        large = SyntheticConfig.large()
        assert small.topology.total_ases < default.topology.total_ases < large.topology.total_ases


class TestDatasetStatistics:
    @pytest.fixture(scope="class")
    def stats(self, tiny_internet):
        config = ArchiveConfig(rib_snapshots_per_day=1, update_share=0.3, seed=2)
        archive = tiny_internet.archive_for("ripe", config=config).generate_day(0)
        return compute_statistics(
            "ripe", [archive], registry=tiny_internet.topology.asn_registry
        ), archive, tiny_internet

    def test_entry_counts(self, stats):
        statistics, archive, _ = stats
        assert statistics.entries_total == archive.total_entries
        assert statistics.rib_entries == archive.rib_entry_count
        assert statistics.unique_tuples <= len(archive.observations)

    def test_as_counts(self, stats):
        statistics, _, internet = stats
        assert 0 < statistics.as_after_cleaning <= statistics.as_numbers
        assert statistics.leaf_ases < statistics.as_after_cleaning
        assert 0 < statistics.ases_32bit < statistics.as_after_cleaning
        assert statistics.collector_peers == len(internet.projects["ripe"].peer_asns())

    def test_community_counts(self, stats):
        statistics, _, _ = stats
        assert statistics.communities_total > 0
        assert statistics.communities_large <= statistics.communities_total
        assert statistics.unique_communities > 0
        assert statistics.unique_upper_both >= statistics.unique_upper_regular

    def test_private_and_stray_filters_shrink_upper_fields(self, stats):
        statistics, _, _ = stats
        assert statistics.unique_upper_wo_private <= statistics.unique_upper_both
        assert statistics.unique_upper_wo_stray <= statistics.unique_upper_wo_private

    def test_format_table_renders_all_columns(self, stats):
        statistics, _, _ = stats
        text = format_table([statistics, statistics])
        assert "Entries total" in text
        assert text.count("ripe") == 2
        assert format_table([]) == ""
