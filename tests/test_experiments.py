"""Integration tests for the experiment drivers (tiny scale).

Each driver must run end to end and reproduce the qualitative findings of the
corresponding paper table / figure.
"""

import io

import pytest

from repro.experiments import figure2, figure3, figure4, figure5, figure6, table1, table2, table3, table4, table5_6
from repro.experiments.context import ExperimentContext, ExperimentScale
from repro.experiments.runner import DEFAULT_SCALE, EXPERIMENTS, run_all, run_matrix
from repro.experiments import runner as runner_module
from repro.usage.scenarios import ScenarioName


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(scale=ExperimentScale.TINY, seed=2)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, context):
        return table1.run(context)

    def test_all_columns_present(self, result):
        names = [column.name for column in result.columns]
        assert names == ["ripe", "routeviews", "isolario", "dMay21", "pch"]

    def test_aggregate_dominates_members(self, result):
        aggregate = result.column("dMay21")
        for name in ("ripe", "routeviews", "isolario"):
            assert aggregate.unique_tuples >= result.column(name).unique_tuples
            assert aggregate.as_after_cleaning >= result.column(name).as_after_cleaning

    def test_pch_has_no_rib_entries(self, result):
        assert result.column("pch").rib_entries == 0

    def test_leaf_majority_and_32bit_share(self, result):
        aggregate = result.column("dMay21")
        assert aggregate.leaf_ases / aggregate.as_after_cleaning > 0.6
        assert 0.2 < aggregate.ases_32bit / aggregate.as_after_cleaning < 0.6

    def test_format_text(self, result):
        assert "Entries total" in result.format_text()


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, context):
        return table2.run(context, iterations=1)

    def test_all_scenarios_present(self, result):
        assert [row.scenario for row in result.rows] == [
            "alltc",
            "alltf",
            "random",
            "random+noise",
            "random-p",
            "random-pp",
        ]

    def test_consistent_scenarios_have_perfect_precision(self, result):
        for scenario in ("alltc", "alltf", "random"):
            row = result.row(scenario)
            assert row.tagging_precision == pytest.approx(1.0)
            assert row.forwarding_precision == pytest.approx(1.0)
        # Noise can introduce a handful of misclassifications (the paper's
        # Table 5 shows 53 out of ~22k); precision stays very close to 1.
        noise = result.row("random+noise")
        assert noise.tagging_precision > 0.95
        assert noise.forwarding_precision > 0.95

    def test_alltf_beats_alltc_in_coverage(self, result):
        alltf = result.row("alltf")
        alltc = result.row("alltc")
        assert alltf.counts["full_tf"] > alltc.counts["full_tc"]
        assert alltf.counts["nn"] < alltc.counts["nn"]

    def test_noise_increases_undecided(self, result):
        assert result.row("random+noise").counts["u*"] > result.row("random").counts["u*"]

    def test_selective_scenarios_reduce_recall(self, result):
        assert result.row("random-p").tagging_recall < result.row("random").tagging_recall
        assert result.row("random-pp").tagging_recall <= result.row("random-p").tagging_recall

    def test_format_text(self, result):
        text = result.format_text()
        assert "random-pp" in text


class TestTable5and6:
    def test_matrices_have_no_cross_class_errors_in_random(self, context):
        result = table5_6.run(context, scenarios=(ScenarioName.RANDOM,))
        tagging = result.tagging["random"]
        forwarding = result.forwarding["random"]
        assert tagging.cell("tagger", "silent") == 0
        assert tagging.cell("silent", "tagger") == 0
        assert forwarding.cell("forward", "cleaner") == 0
        assert "Table 5" in result.format_text()


class TestFigure2:
    def test_roc_curves(self, context):
        result = figure2.run(context, thresholds=(0.6, 0.99))
        for scenario in ("random-p", "random-pp"):
            for classifier in ("tagging", "forwarding"):
                points = result.curve(scenario, classifier)
                assert len(points) == 2
                assert all(0 <= p.false_positive_rate <= 0.5 for p in points)
        assert "Figure 2" in result.format_text()


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, context):
        return table3.run(context)

    def test_columns_and_rows(self, result):
        assert "dMay21" in result.columns
        assert result.count("dMay21", "tagger") > 0
        assert result.count("dMay21", "silent") > result.count("dMay21", "tagger")

    def test_aggregate_yields_most_full_classifications(self, result):
        aggregate_full = sum(
            result.count("dMay21", row)
            for row in ("tagger-forward", "tagger-cleaner", "silent-forward", "silent-cleaner")
        )
        for name in ("ripe", "routeviews", "isolario"):
            member_full = sum(
                result.count(name, row)
                for row in ("tagger-forward", "tagger-cleaner", "silent-forward", "silent-cleaner")
            )
            assert aggregate_full >= member_full

    def test_format_text(self, result):
        assert "silent-cleaner" in result.format_text()


class TestFigures3Through6:
    def test_figure3_stability(self, context):
        result = figure3.run(context, days=3)
        assert set(result.counts) == {"tf", "tc", "sf", "sc"}
        # Across all full classes the vast majority of members are stable
        # since day 1 (individual classes can be tiny at this scale).
        stable = sum(per_day[-1].stable for per_day in result.counts.values())
        total = sum(per_day[-1].total for per_day in result.counts.values())
        assert total > 0
        assert stable / total > 0.6
        assert "==" in result.format_text()

    def test_figure4_longitudinal_is_stable(self, context):
        result = figure4.run(context, labels=("q1", "q2", "q3"))
        assert len(result.series) == 3
        for code in ("tf", "sc"):
            if max(result.counts_for(code)):
                assert result.relative_spread(code) < 0.5
        assert "q2" in result.format_text()

    def test_figure5_community_types(self, context):
        result = figure5.run(context)
        from repro.sanitize.sources import CommunitySource

        # Silent-cleaner peers export neither peer nor foreign communities.
        assert result.total_of("sc", CommunitySource.PEER) == 0
        assert result.total_of("sc", CommunitySource.FOREIGN) == 0
        assert "class" in result.format_text()

    def test_figure6_cone_characterisation(self, context):
        result = figure6.run(context)
        silent = result.distribution("tagging", "silent")
        tagger = result.distribution("tagging", "tagger")
        if len(silent) and len(tagger):
            assert result.leaf_share("tagging", "tagger") < result.leaf_share("tagging", "silent")
        assert "dimension" in result.format_text()

    def test_table4_validation(self, context):
        result = table4.run(context, labels=("exp-1", "exp-2"), n_pops=6)
        assert len(result.experiments) == 2
        for experiment in result.experiments:
            assert experiment.absent_cleaner_share > experiment.present_cleaner_share
        assert "exp-1" in result.format_text()


class TestRunner:
    def test_run_all_subset(self, context):
        stream = io.StringIO()
        results = run_all(ExperimentScale.TINY, only=["figure6"], seed=2, stream=stream)
        assert "figure6" in results
        assert "figure6" in stream.getvalue()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_all(ExperimentScale.TINY, only=["nope"])

    def test_registry_covers_all_tables_and_figures(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5_6",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
        }
        assert set(EXPERIMENTS) == expected

    def test_api_and_cli_share_one_default_scale(self, monkeypatch):
        """run_all and the CLI must use the same documented default scale."""
        import inspect

        assert inspect.signature(run_all).parameters["scale"].default is DEFAULT_SCALE

        seen = {}

        def spy_run_all(scale, **kwargs):
            seen["scale"] = scale
            return {}

        monkeypatch.setattr(runner_module, "run_all", spy_run_all)
        assert runner_module.main([]) == 0
        assert seen["scale"] is DEFAULT_SCALE

    def test_run_all_parallel_matches_serial(self, context):
        serial_stream = io.StringIO()
        parallel_stream = io.StringIO()
        serial = run_all(
            ExperimentScale.TINY, only=["table3", "figure6"], seed=2, stream=serial_stream
        )
        parallel = run_all(
            ExperimentScale.TINY,
            only=["table3", "figure6"],
            seed=2,
            stream=parallel_stream,
            workers=2,
        )
        assert set(serial) == set(parallel) == {"table3", "figure6"}
        assert (
            parallel["figure6"].format_text() == serial["figure6"].format_text()
        )
        assert parallel["table3"].format_text() == serial["table3"].format_text()


class TestContextCache:
    def test_aggregate_artifacts_round_trip_through_cache(self, tmp_path):
        warm = ExperimentContext(scale=ExperimentScale.TINY, seed=2, cache_dir=tmp_path)
        tuples = warm.aggregate_tuples
        classification = warm.aggregate_classification
        assert any(tmp_path.iterdir())  # cache files written

        cold = ExperimentContext(scale=ExperimentScale.TINY, seed=2, cache_dir=tmp_path)
        assert cold.aggregate_tuples == tuples
        assert (
            cold.aggregate_classification.as_code_map() == classification.as_code_map()
        )
        assert (
            cold.aggregate_classification.store.state_dict()
            == classification.store.state_dict()
        )

    def test_cache_key_separates_scales_seeds_and_thresholds(self, tmp_path):
        from repro.core.thresholds import Thresholds

        a = ExperimentContext(scale=ExperimentScale.TINY, seed=2, cache_dir=tmp_path)
        b = ExperimentContext(scale=ExperimentScale.TINY, seed=3, cache_dir=tmp_path)
        c = ExperimentContext(
            scale=ExperimentScale.TINY,
            seed=2,
            thresholds=Thresholds.uniform(0.9),
            cache_dir=tmp_path,
        )
        paths = {
            ctx._cache_path("aggregate-tuples") for ctx in (a, b, c)
        }
        assert len(paths) == 3

    def test_corrupt_cache_entry_is_rebuilt(self, tmp_path):
        context = ExperimentContext(scale=ExperimentScale.TINY, seed=2, cache_dir=tmp_path)
        path = context._cache_path("aggregate-tuples")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"definitely not a pickle")
        assert len(context.aggregate_tuples) > 0


class TestMatrix:
    def test_matrix_sweeps_seeds_and_scales(self):
        stream = io.StringIO()
        result = run_matrix(
            [ExperimentScale.TINY],
            [1, 2],
            base_seed=2,
            scenario=ScenarioName.RANDOM,
            stream=stream,
        )
        assert len(result.cells) == 2
        assert {cell.seed for cell in result.cells} == {1, 2}
        stability = result.stability()
        assert "tiny" in stability
        assert stability["tiny"]["prec_tagging_mean"] >= 0.0
        assert "scenario stability matrix" in stream.getvalue()

    def test_matrix_parallel_matches_serial(self):
        serial = run_matrix(
            [ExperimentScale.TINY], [1, 2], base_seed=2, stream=io.StringIO()
        )
        parallel = run_matrix(
            [ExperimentScale.TINY], [1, 2], base_seed=2, workers=2, stream=io.StringIO()
        )
        assert [c.as_row() for c in parallel.cells] == [c.as_row() for c in serial.cells]
