"""Tests for the classification database export/import (repro.core.export)."""

import io

import pytest

from repro.bgp.announcement import PathCommTuple
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.core.column import ColumnInference
from repro.core.export import FORMAT_HEADER, ClassificationDatabase, ClassificationRecord
from repro.core.thresholds import Thresholds


@pytest.fixture()
def result():
    tuples = [
        PathCommTuple(ASPath([10]), CommunitySet.from_strings(["10:1"])),
        PathCommTuple(ASPath([20]), CommunitySet.empty()),
        PathCommTuple(ASPath([30]), CommunitySet.from_strings(["30:1"])),
        PathCommTuple(ASPath([10, 30]), CommunitySet.from_strings(["10:1", "30:1"])),
        PathCommTuple(ASPath([20, 30]), CommunitySet.from_strings(["30:1"])),
    ]
    return ColumnInference().run(tuples), tuples


class TestRecord:
    def test_line_round_trip(self):
        original = ClassificationRecord.from_line("3356|tf|412|3|371|0")
        assert original.asn == 3356
        assert original.classification.code == "tf"
        assert original.counters.tagger == 412
        assert ClassificationRecord.from_line(original.to_line()) == original

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            ClassificationRecord.from_line("3356|tf|1")

    def test_to_dict(self):
        record = ClassificationRecord.from_line("1|sc|0|5|0|9")
        data = record.to_dict()
        assert data["class"] == "sc"
        assert data["cleaner_count"] == 9


class TestDatabase:
    def test_from_result_contains_all_observed_ases(self, result):
        classification, _ = result
        database = ClassificationDatabase.from_result(classification)
        assert len(database) == len(classification.observed_ases)
        assert 10 in database
        assert database.classification_of(10).code == classification.classification_of(10).code

    def test_text_round_trip(self, result):
        classification, _ = result
        database = ClassificationDatabase.from_result(classification)
        text = database.dumps()
        assert text.startswith(FORMAT_HEADER)
        restored = ClassificationDatabase.loads(text)
        assert len(restored) == len(database)
        for asn in database:
            assert restored.get(asn) == database.get(asn)

    def test_json_round_trip(self, result):
        classification, _ = result
        database = ClassificationDatabase.from_result(classification)
        restored = ClassificationDatabase.from_json(database.to_json())
        assert restored.counts_by_code() == database.counts_by_code()

    def test_load_rejects_wrong_header(self):
        with pytest.raises(ValueError):
            ClassificationDatabase.load(io.StringIO("# something else\n1|tf|1|0|1|0\n"))

    def test_comments_and_blank_lines_ignored(self):
        text = FORMAT_HEADER + "\n# comment\n\n10|tf|5|0|5|0\n"
        database = ClassificationDatabase.loads(text)
        assert len(database) == 1

    def test_counts_by_code(self, result):
        classification, _ = result
        database = ClassificationDatabase.from_result(classification)
        counts = database.counts_by_code()
        assert sum(counts.values()) == len(database)

    def test_to_result_reproduces_classification(self, result):
        classification, _ = result
        database = ClassificationDatabase.from_result(classification)
        rebuilt = database.to_result()
        for asn in classification.observed_ases:
            assert rebuilt.classification_of(asn) == classification.classification_of(asn)

    def test_to_result_allows_rethresholding(self, result):
        classification, _ = result
        database = ClassificationDatabase.from_result(classification)
        relaxed = database.to_result(Thresholds.uniform(0.51))
        strict = database.to_result(Thresholds.uniform(1.0))
        # Relaxing thresholds can only keep or increase decided inferences.
        relaxed_decided = sum(1 for asn in relaxed.observed_ases if relaxed[asn].tagging.is_decided)
        strict_decided = sum(1 for asn in strict.observed_ases if strict[asn].tagging.is_decided)
        assert relaxed_decided >= strict_decided

    def test_iteration_is_sorted(self, result):
        classification, _ = result
        database = ClassificationDatabase.from_result(classification)
        assert list(database) == sorted(database)
