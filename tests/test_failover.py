"""Leader failover: the durable epoch fence and ``promote()``.

Pins the failover contract of ``repro.service.failover`` on every backend
flavour (SQLite, memory, tiered):

* the leader epoch is durable store meta: starts at 0, bumps monotonically,
  survives reopen (SQLite), and shows up in ``stats()``;
* appends stamped with a stale epoch raise :class:`FencedWriterError` and
  land nothing -- *before* dedup can report success, so a deposed writer
  never mistakes an idempotent no-op for acceptance;
* ``epoch=None`` opts out (pre-failover callers keep working);
* a :class:`SnapshotPublisher` captures the epoch at attach time and is
  fenced by a promotion that happens mid-run;
* the kill-leader -> ``promote()`` -> fenced-old-writer round trip: a
  follower promoted away from a dead leader accepts new writes, while the
  stale syncer still pulling the old leader's pages is fenced instead of
  clobbering the promoted history.
"""

from __future__ import annotations

import pytest

from repro.service import (
    ClassificationServer,
    FencedWriterError,
    MemoryBackend,
    PromotionReport,
    ReplicaSyncer,
    ServiceClient,
    SnapshotPublisher,
    SnapshotStore,
    TieredBackend,
    open_store,
    promote,
)
from repro.service.backends.base import require_current_epoch
from tests.test_backends import build_snapshots


@pytest.fixture(params=["sqlite", "memory", "tiered"])
def make_store(request, tmp_path):
    """A factory of fresh follower-store flavours (closed by the caller)."""
    opened = []

    def make(name="store"):
        if request.param == "sqlite":
            backend = open_store(tmp_path / f"{name}.db")
        elif request.param == "memory":
            backend = MemoryBackend()
        else:
            backend = TieredBackend(MemoryBackend(), tmp_path / f"{name}-cold")
        opened.append(backend)
        return backend

    yield make
    for backend in opened:
        try:
            backend.close()
        except Exception:
            pass


class TestEpochFence:
    def test_require_current_epoch(self):
        require_current_epoch(None, 5)  # opted out
        require_current_epoch(5, 5)
        require_current_epoch(6, 5)  # a newer writer is never fenced
        with pytest.raises(FencedWriterError, match="deposed by a promotion"):
            require_current_epoch(4, 5)

    def test_stale_epoch_appends_are_fenced(self, make_store):
        store = make_store()
        first, second, third = build_snapshots(3)
        store.append_snapshot(first)  # epoch=None: unfenced legacy writer
        store.append_snapshot(second, epoch=0)
        assert store.bump_leader_epoch() == 1
        with pytest.raises(FencedWriterError):
            store.append_snapshot(third, epoch=0)
        assert len(store) == 2  # the fenced write landed nothing
        store.append_snapshot(third, epoch=1)
        assert len(store) == 3
        assert store.stats()["leader_epoch"] == 1

    def test_fence_beats_dedup(self, make_store):
        """A deposed writer re-offering a held window sees the fence, not a
        successful dedup: acceptance must not be simulated."""
        store = make_store()
        snapshot = build_snapshots(1)[0]
        store.append_snapshot(snapshot, epoch=0)
        store.bump_leader_epoch()
        with pytest.raises(FencedWriterError):
            store.append_snapshot(snapshot, kind="window", if_absent=True, epoch=0)

    def test_epoch_survives_reopen(self, tmp_path):
        path = tmp_path / "durable.db"
        with SnapshotStore(path) as store:
            store.bump_leader_epoch()
            store.bump_leader_epoch()
        with SnapshotStore(path) as store:
            assert store.leader_epoch() == 2

    def test_publisher_is_fenced_by_mid_run_promotion(self, make_store):
        store = make_store()
        first, second = build_snapshots(2)
        publisher = SnapshotPublisher(store)
        publisher(first)
        assert publisher.published == 1
        store.bump_leader_epoch()  # someone else was promoted
        with pytest.raises(FencedWriterError):
            publisher(second)
        # A re-attached publisher adopts the new epoch and proceeds.
        recovered = SnapshotPublisher(store)
        recovered(second)
        assert len(store) == 2


class TestPromote:
    def test_promote_against_live_leader_syncs_first(self, tmp_path, make_store):
        with SnapshotStore(tmp_path / "leader.db") as leader:
            snapshots = build_snapshots(3)
            for snapshot in snapshots:
                leader.append_snapshot(snapshot)
            follower = make_store("follower")
            with ClassificationServer(leader) as server:
                server.start()
                report = promote(follower, leader_url=server.url)
        assert isinstance(report, PromotionReport)
        assert report.synced and report.sync_error is None
        assert report.applied == 3
        assert (report.previous_epoch, report.epoch) == (0, 1)
        assert follower.leader_epoch() == 1
        assert report.leader_generation == follower.applied_generation()
        assert report.to_dict()["epoch"] == 1

    def test_promote_with_dead_leader_still_bumps(self, make_store):
        follower = make_store("follower")
        follower.append_snapshot(build_snapshots(1)[0])
        # Nothing listens on this port: the normal failover case.
        report = promote(follower, leader_url="http://127.0.0.1:9")
        assert not report.synced and report.sync_error is not None
        assert report.epoch == 1
        # The promoted store accepts writes at its new epoch.
        follower.append_snapshot(build_snapshots(2)[-1], epoch=1)
        assert len(follower) == 2

    def test_promote_without_leader_is_a_pure_bump(self, make_store):
        store = make_store()
        report = promote(store)
        assert report.synced is False and report.sync_error is None
        assert (report.applied, report.deduplicated) == (0, 0)
        assert store.leader_epoch() == 1

    def test_cli_promote_live_leader(self, tmp_path, capsys):
        from repro.cli import main

        with SnapshotStore(tmp_path / "leader.db") as leader:
            for snapshot in build_snapshots(2):
                leader.append_snapshot(snapshot)
            with ClassificationServer(leader) as server:
                server.start()
                rc = main(
                    [
                        "replicate",
                        "--from",
                        server.url,
                        "--store",
                        str(tmp_path / "replica.db"),
                        "--promote",
                    ]
                )
        assert rc == 0
        captured = capsys.readouterr()
        import json

        outcome = json.loads(captured.out)
        assert outcome["applied"] == 2 and outcome["epoch"] == 1
        assert "promoted" in captured.err
        with SnapshotStore(tmp_path / "replica.db") as replica:
            assert replica.leader_epoch() == 1 and len(replica) == 2

    def test_cli_promote_dead_leader_warns_but_promotes(self, tmp_path, capsys):
        from repro.cli import main

        store_path = tmp_path / "replica.db"
        with SnapshotStore(store_path) as replica:
            replica.append_snapshot(build_snapshots(1)[0])
        rc = main(
            [
                "replicate",
                "--from",
                "http://127.0.0.1:9",
                "--store",
                str(store_path),
                "--promote",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "warning: final sync" in captured.err
        with SnapshotStore(store_path) as replica:
            assert replica.leader_epoch() == 1

    def test_kill_leader_promote_fence_round_trip(self, tmp_path, make_store):
        """The full story: follower syncs, leader dies, follower is
        promoted, and the stale syncer pulling the resurrected old leader
        is fenced instead of overwriting the promoted history."""
        with SnapshotStore(tmp_path / "leader.db") as leader:
            for snapshot in build_snapshots(2):
                leader.append_snapshot(snapshot)
            follower = make_store("follower")
            with ClassificationServer(leader) as server:
                server.start()
                stale_syncer = ReplicaSyncer(server.url, follower)
                assert stale_syncer.sync_once().applied == 2
                assert stale_syncer.epoch == 0
                server.close()  # the leader "dies"

                report = promote(follower, leader_url=server.url)
                assert report.sync_error is not None and report.epoch == 1

                # The promoted store is writable by a fresh publisher...
                publisher = SnapshotPublisher(follower)
                assert publisher.epoch == 1
                publisher(build_snapshots(3)[-1])
                assert len(follower) == 3
            stale_syncer.client.close()

            # ...while the stale syncer, still carrying epoch 0, is fenced
            # as soon as the old leader comes back with anything new.
            leader.append_snapshot(build_snapshots(4)[-1])
            with ClassificationServer(leader) as revived:
                revived.start()
                stale_syncer.client = ServiceClient(revived.url)
                with pytest.raises(FencedWriterError):
                    stale_syncer.sync_once()
                stale_syncer.client.close()
        assert len(follower) == 3  # the promoted history was never touched
