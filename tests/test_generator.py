"""Unit tests for the topology generator (repro.topology.generator)."""


from repro.bgp.asn import MAX_ASN_16BIT
from repro.topology.generator import ASTier, InternetTopologyGenerator, TopologyConfig


class TestTopologyConfig:
    def test_total_ases(self):
        config = TopologyConfig(n_tier1=2, n_large_transit=3, n_mid_transit=4, n_small_transit=5, n_stub=6)
        assert config.total_ases == 20

    def test_scaled_reduces_sizes(self):
        small = TopologyConfig.scaled(0.25)
        default = TopologyConfig()
        assert small.n_stub < default.n_stub
        assert small.total_ases < default.total_ases


class TestGeneratedStructure:
    def test_all_tiers_present(self, topology, small_topology_config):
        for tier in ASTier:
            assert topology.by_tier(tier), tier
        assert len(topology) == small_topology_config.total_ases

    def test_stubs_form_the_majority(self, topology):
        assert len(topology.by_tier(ASTier.STUB)) / len(topology) > 0.6

    def test_every_non_tier1_as_has_a_provider(self, topology):
        for asn, info in topology.ases.items():
            if info.tier is ASTier.TIER1:
                continue
            assert topology.relationships.providers_of(asn), asn

    def test_tier1_clique_has_no_providers(self, topology):
        for asn in topology.by_tier(ASTier.TIER1):
            assert not topology.relationships.providers_of(asn)

    def test_tier1_full_mesh_peering(self, topology):
        tier1 = topology.by_tier(ASTier.TIER1)
        for asn in tier1:
            assert topology.relationships.peers_of(asn) >= set(tier1) - {asn}

    def test_hierarchy_is_acyclic(self, topology):
        assert topology.relationships.validate_acyclic()

    def test_leaf_and_transit_partition(self, topology):
        leafs = set(topology.leaf_asns())
        transit = set(topology.transit_asns())
        assert leafs | transit == set(topology.ases)
        assert not leafs & transit

    def test_every_as_has_prefixes(self, topology):
        for asn in topology.asns():
            assert topology.prefixes_of(asn)

    def test_prefixes_are_globally_unique(self, topology):
        seen = set()
        for asn in topology.asns():
            for prefix in topology.prefixes_of(asn):
                assert prefix not in seen
                seen.add(prefix)

    def test_asn_registry_covers_all_ases(self, topology):
        for asn in topology.asns():
            assert topology.asn_registry.is_allocated(asn)

    def test_32bit_share_is_substantial(self, topology):
        share = topology.count_32bit() / len(topology)
        assert 0.2 < share < 0.6

    def test_32bit_asns_only_in_edge_tiers(self, topology):
        for tier in (ASTier.TIER1, ASTier.LARGE_TRANSIT, ASTier.MID_TRANSIT):
            for asn in topology.by_tier(tier):
                assert asn <= MAX_ASN_16BIT

    def test_determinism(self, small_topology_config):
        a = InternetTopologyGenerator(small_topology_config).generate()
        b = InternetTopologyGenerator(small_topology_config).generate()
        assert a.asns() == b.asns()
        assert set(a.relationships.p2c_edges()) == set(b.relationships.p2c_edges())

    def test_different_seeds_differ(self, small_topology_config):
        import dataclasses

        other_config = dataclasses.replace(small_topology_config, seed=99)
        a = InternetTopologyGenerator(small_topology_config).generate()
        b = InternetTopologyGenerator(other_config).generate()
        assert set(a.relationships.p2c_edges()) != set(b.relationships.p2c_edges())


class TestCollectorPeerSelection:
    def test_requested_count(self, topology):
        peers = topology.select_collector_peers(25, seed=1)
        assert len(peers) == 25

    def test_peers_are_mostly_transit(self, topology):
        peers = topology.select_collector_peers(40, seed=1)
        transit = set(topology.transit_asns())
        share = sum(1 for p in peers if p in transit) / len(peers)
        assert share > 0.8

    def test_selection_is_deterministic(self, topology):
        assert topology.select_collector_peers(20, seed=3) == topology.select_collector_peers(20, seed=3)


class TestGrowth:
    def test_grow_adds_stubs(self):
        config = TopologyConfig(seed=5, n_tier1=4, n_large_transit=6, n_mid_transit=10, n_small_transit=10, n_stub=50)
        topology = InternetTopologyGenerator(config).generate()
        before = len(topology)
        grown = topology.grow(20, seed=9)
        assert len(grown) == before + 20
        # New ASes are stubs with at least one provider and allocated ASNs.
        new_asns = set(grown.ases) - set(range(0)) - set(topology.asns())
        for asn in new_asns:
            assert grown.ases[asn].tier is ASTier.STUB
            assert grown.relationships.providers_of(asn)
            assert grown.asn_registry.is_allocated(asn)
