"""Unit tests for repro.bgp.messages and repro.bgp.announcement."""

import pytest

from repro.bgp.announcement import PathCommTuple, RouteObservation, unique_tuples
from repro.bgp.community import CommunitySet
from repro.bgp.messages import BGPUpdate, Origin, PathAttributes, RIBEntry
from repro.bgp.path import ASPath
from repro.bgp.prefix import parse_prefix


@pytest.fixture()
def attributes():
    return PathAttributes(
        as_path=ASPath([3356, 1299, 2914]),
        communities=CommunitySet.from_strings(["3356:100"]),
    )


class TestPathAttributes:
    def test_defaults(self, attributes):
        assert attributes.origin is Origin.IGP
        assert attributes.local_pref is None

    def test_with_communities_replaces_only_communities(self, attributes):
        replaced = attributes.with_communities(CommunitySet.empty())
        assert replaced.communities == CommunitySet.empty()
        assert replaced.as_path == attributes.as_path
        assert attributes.communities  # original untouched


class TestBGPUpdate:
    def test_announcement_requires_attributes(self):
        with pytest.raises(ValueError):
            BGPUpdate(peer_asn=1, timestamp=0, announced=(parse_prefix("8.8.8.0/24"),))

    def test_announcement_properties(self, attributes):
        update = BGPUpdate(
            peer_asn=3356,
            timestamp=10,
            announced=(parse_prefix("8.8.8.0/24"),),
            attributes=attributes,
        )
        assert update.is_announcement
        assert not update.is_withdrawal
        assert update.as_path == attributes.as_path
        assert update.communities.has_upper(3356)

    def test_withdrawal_only(self):
        update = BGPUpdate(peer_asn=1, timestamp=0, withdrawn=(parse_prefix("8.8.8.0/24"),))
        assert update.is_withdrawal
        assert not update.is_announcement
        assert update.as_path is None
        assert update.communities == CommunitySet.empty()

    def test_sequences_coerced_to_tuples(self, attributes):
        update = BGPUpdate(
            peer_asn=1,
            timestamp=0,
            announced=[parse_prefix("8.8.8.0/24")],
            attributes=attributes,
        )
        assert isinstance(update.announced, tuple)


class TestRIBEntry:
    def test_accessors(self, attributes):
        entry = RIBEntry(peer_asn=3356, prefix=parse_prefix("8.8.8.0/24"), attributes=attributes)
        assert entry.as_path.peer == 3356
        assert entry.communities.has_upper(3356)


class TestObservations:
    def _observation(self, path, comms=("3356:1",)):
        return RouteObservation(
            collector="rrc00",
            peer_asn=path[0],
            prefix=parse_prefix("8.8.8.0/24"),
            path=ASPath(path),
            communities=CommunitySet.from_strings(comms),
        )

    def test_to_tuple(self):
        observation = self._observation([3356, 1299])
        item = observation.to_tuple()
        assert item.peer == 3356
        assert item.origin == 1299
        assert item.communities.has_upper(3356)

    def test_path_comm_tuple_unpacking(self):
        item = PathCommTuple(ASPath([1, 2]), CommunitySet.empty())
        path, communities = item
        assert path == ASPath([1, 2])
        assert communities == CommunitySet.empty()
        assert len(item) == 2

    def test_unique_tuples_deduplicates(self):
        a = self._observation([3356, 1299])
        b = self._observation([3356, 1299])
        c = self._observation([3356, 1299], comms=("1299:1",))
        result = unique_tuples([a, b, c])
        assert len(result) == 2

    def test_unique_tuples_preserves_order(self):
        a = self._observation([1, 2])
        b = self._observation([3, 4])
        result = unique_tuples([a, b, a])
        assert result[0].path == ASPath([1, 2])
        assert result[1].path == ASPath([3, 4])
