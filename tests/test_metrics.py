"""Tests for scenario evaluation metrics, ROC sweeps, and stability analyses."""

import pytest

from repro.core.column import ColumnInference
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds
from repro.eval.metrics import ConfusionMatrix, evaluate_scenario
from repro.eval.roc import roc_series, threshold_sweep
from repro.eval.stability import IncrementalDayAnalysis, longitudinal_series
from repro.usage.scenarios import ScenarioName


class TestConfusionMatrix:
    def test_add_and_cell(self):
        matrix = ConfusionMatrix(kind="tagging")
        matrix.add("tagger", "tagger", 5)
        matrix.add("tagger", "none")
        assert matrix.cell("tagger", "tagger") == 5
        assert matrix.cell("tagger", "none") == 1
        assert matrix.cell("silent", "tagger") == 0
        assert matrix.row_total("tagger") == 6

    def test_to_text_contains_rows_and_columns(self):
        matrix = ConfusionMatrix(kind="forwarding")
        matrix.add("cleaner (leaf)", "none", 3)
        text = matrix.to_text()
        assert "cleaner (leaf)" in text
        assert "forward" in text  # column header


class TestScenarioEvaluation:
    def test_random_scenario_scores(self, random_dataset, random_classification):
        evaluation = evaluate_scenario(random_dataset, random_classification)
        # The paper's headline claim: perfect precision on consistent behaviour.
        assert evaluation.tagging.precision == pytest.approx(1.0)
        assert evaluation.forwarding.precision == pytest.approx(1.0)
        assert 0.3 < evaluation.tagging.recall <= 1.0
        assert 0.2 < evaluation.forwarding.recall <= 1.0

    def test_confusion_matrix_has_no_cross_class_errors(self, random_dataset, random_classification):
        evaluation = evaluate_scenario(random_dataset, random_classification)
        assert evaluation.tagging_matrix.cell("tagger", "silent") == 0
        assert evaluation.tagging_matrix.cell("silent", "tagger") == 0
        assert evaluation.forwarding_matrix.cell("forward", "cleaner") == 0
        assert evaluation.forwarding_matrix.cell("cleaner", "forward") == 0

    def test_hidden_rows_only_contain_none_or_undecided(self, random_dataset, random_classification):
        evaluation = evaluate_scenario(random_dataset, random_classification)
        for row in ("tagger (hidden)", "silent (hidden)"):
            if row not in evaluation.tagging_matrix.rows:
                continue
            assert evaluation.tagging_matrix.cell(row, "tagger") == 0
            assert evaluation.tagging_matrix.cell(row, "silent") == 0

    def test_leaf_rows_have_no_forwarding_classification(self, random_dataset, random_classification):
        evaluation = evaluate_scenario(random_dataset, random_classification)
        for row, cells in evaluation.forwarding_matrix.rows.items():
            if "(leaf)" in row:
                assert cells.get("forward", 0) == 0
                assert cells.get("cleaner", 0) == 0

    def test_selective_scenario_reduces_recall_not_precision_much(self, scenario_builder):
        dataset = scenario_builder.build(ScenarioName.RANDOM_P, seed=7)
        result = ColumnInference().run(dataset.tuples)
        evaluation = evaluate_scenario(dataset, result)
        assert evaluation.tagging.precision > 0.8
        assert "selective" in evaluation.tagging_matrix.rows or "selective (hidden)" in evaluation.tagging_matrix.rows

    def test_table2_row_shape(self, random_dataset, random_classification):
        row = evaluate_scenario(random_dataset, random_classification).table2_row()
        assert row["scenario"] == "random"
        assert "tagging_recall" in row and "full_sc" in row


class TestROCSweep:
    def test_sweep_produces_monotone_fpr(self, scenario_builder):
        dataset = scenario_builder.build(ScenarioName.RANDOM_P, seed=7)
        curves = threshold_sweep(dataset, thresholds=(0.6, 0.9, 1.0))
        for classifier in ("tagging", "forwarding"):
            points = curves[classifier]
            assert len(points) == 3
            # Raising the threshold cannot increase the false-positive rate.
            fprs = [p.false_positive_rate for p in points]
            assert fprs[0] >= fprs[-1]
            # All rates are valid probabilities.
            for point in points:
                assert 0.0 <= point.false_positive_rate <= 1.0
                assert 0.0 <= point.true_positive_rate <= 1.0

    def test_roc_series_shape(self, scenario_builder):
        dataset = scenario_builder.build(ScenarioName.RANDOM_P, seed=7)
        curves = threshold_sweep(dataset, thresholds=(0.9,))
        series = roc_series(curves["tagging"])
        assert len(series) == 1 and len(series[0]) == 2


class TestStability:
    def _result_with(self, codes):
        """Build a fake classification result with given full classes."""
        from repro.core.counters import CounterStore

        store = CounterStore(Thresholds())
        observed = set()
        for asn, code in codes.items():
            observed.add(asn)
            if code[0] == "t":
                store.count_tagger(asn)
            else:
                store.count_silent(asn)
            if code[1] == "f":
                store.count_forward(asn)
            else:
                store.count_cleaner(asn)
        return ClassificationResult(store=store, observed_ases=observed)

    def test_new_stable_recurring(self):
        day1 = self._result_with({1: "tf", 2: "sc"})
        day2 = self._result_with({1: "tf", 2: "sc", 3: "tf"})
        day3 = self._result_with({1: "tf", 2: "sc", 3: "sf"})  # 3 changes class
        day4 = self._result_with({1: "tf", 2: "sc", 3: "tf"})  # 3 returns to tf
        analysis = IncrementalDayAnalysis.from_results([day1, day2, day3, day4])
        tf_counts = analysis.counts_for("tf")
        assert tf_counts[0].new == 1
        assert tf_counts[1].new == 1 and tf_counts[1].stable == 1
        assert tf_counts[3].recurring == 1
        assert analysis.stability_share("sc") == pytest.approx(1.0)

    def test_longitudinal_series(self):
        results = [("q1", self._result_with({1: "tf"})), ("q2", self._result_with({1: "tf", 2: "sc"}))]
        series = longitudinal_series(results)
        assert series[0].count("tf") == 1
        assert series[1].count("sc") == 1
        assert series[0].label == "q1"
