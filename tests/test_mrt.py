"""Unit tests for the MRT encoder and decoder."""

import pytest

from repro.bgp.community import CommunitySet
from repro.bgp.messages import BGPUpdate, Origin, PathAttributes
from repro.bgp.path import ASPath
from repro.bgp.prefix import parse_prefix
from repro.mrt import (
    BGP4MPMessage,
    MRTDecodeError,
    MRTDecoder,
    MRTEncoder,
    PeerIndexTable,
    RIBEntryRecord,
    decode_records,
    encode_records,
)
from repro.mrt.decoder import decode_path_attributes
from repro.mrt.encoder import encode_path_attributes


@pytest.fixture()
def attributes():
    return PathAttributes(
        as_path=ASPath([3356, 1299, 200000]),
        communities=CommunitySet.from_strings(["3356:100", "200000:5:6"]),
        origin=Origin.EGP,
        next_hop=0x0A000001,
        med=50,
        local_pref=120,
    )


class TestPathAttributeCodec:
    def test_round_trip(self, attributes):
        blob = encode_path_attributes(attributes, asn_size=4)
        decoded = decode_path_attributes(blob, asn_size=4)
        assert decoded.as_path == attributes.as_path
        assert decoded.communities == attributes.communities
        assert decoded.origin is Origin.EGP
        assert decoded.next_hop == attributes.next_hop
        assert decoded.med == 50
        assert decoded.local_pref == 120

    def test_two_byte_asn_encoding(self):
        attrs = PathAttributes(as_path=ASPath([3356, 1299]))
        blob = encode_path_attributes(attrs, asn_size=2)
        decoded = decode_path_attributes(blob, asn_size=2)
        assert decoded.as_path == attrs.as_path

    def test_missing_as_path_rejected(self):
        with pytest.raises(MRTDecodeError):
            decode_path_attributes(b"", asn_size=4)

    def test_malformed_communities_length_rejected(self):
        # COMMUNITIES attribute with a 3-byte body is invalid.
        blob = bytes([0x40, 2, 4, 2, 1, 0, 0, 0, 3356 >> 8, 3356 & 0xFF])
        blob += bytes([0xC0, 8, 3, 1, 2, 3])
        with pytest.raises(MRTDecodeError):
            decode_path_attributes(blob, asn_size=2)


class TestRIBRoundTrip:
    def test_rib_entries_round_trip(self, attributes):
        prefix = parse_prefix("8.8.8.0/24")
        blob = encode_records([3356, 1299], rib=[(prefix, [(3356, 111, attributes)])], timestamp=42)
        records = decode_records(blob)
        assert isinstance(records[0], PeerIndexTable)
        assert isinstance(records[1], RIBEntryRecord)
        assert records[1].prefix == prefix
        entries = records[1].to_rib_entries(records[0])
        assert entries[0].peer_asn == 3356
        assert entries[0].as_path == attributes.as_path
        assert entries[0].communities == attributes.communities
        assert entries[0].timestamp == 111

    def test_peer_table_metadata(self):
        blob = encode_records([10, 20, 200000], timestamp=7)
        (table,) = decode_records(blob)
        assert [p.peer_asn for p in table.peers] == [10, 20, 200000]
        assert table.timestamp == 7

    def test_ipv6_rib_entry(self, attributes):
        prefix = parse_prefix("2001:db8::/32")
        blob = encode_records([3356], rib=[(prefix, [(3356, 0, attributes)])])
        records = decode_records(blob)
        assert records[1].prefix == prefix

    def test_unknown_peer_rejected_at_encode_time(self, attributes):
        encoder = MRTEncoder()
        encoder.write_peer_index_table([10])
        with pytest.raises(ValueError):
            encoder.write_rib_entry(parse_prefix("8.8.8.0/24"), [(99, 0, attributes)])


class TestUpdateRoundTrip:
    def _update(self, attributes, peer=3356):
        return BGPUpdate(
            peer_asn=peer,
            timestamp=1621382400,
            announced=(parse_prefix("8.8.8.0/24"), parse_prefix("9.9.0.0/16")),
            withdrawn=(parse_prefix("1.2.3.0/24"),),
            attributes=attributes,
        )

    def test_update_round_trip_as4(self, attributes):
        update = self._update(attributes)
        blob = encode_records([3356], updates=[update])
        records = decode_records(blob)
        message = records[-1]
        assert isinstance(message, BGP4MPMessage)
        assert message.is_as4
        decoded = message.update
        assert decoded.peer_asn == 3356
        assert decoded.announced == update.announced
        assert decoded.withdrawn == update.withdrawn
        assert decoded.attributes.as_path == attributes.as_path
        assert decoded.attributes.communities == attributes.communities

    def test_update_round_trip_2byte(self):
        attrs = PathAttributes(as_path=ASPath([3356, 1299]))
        update = BGPUpdate(
            peer_asn=3356,
            timestamp=5,
            announced=(parse_prefix("8.8.8.0/24"),),
            attributes=attrs,
        )
        encoder = MRTEncoder()
        encoder.write_update(update, as4=False)
        message = decode_records(encoder.getvalue())[0]
        assert not message.is_as4
        assert message.update.attributes.as_path == attrs.as_path

    def test_withdrawal_only_update(self):
        update = BGPUpdate(peer_asn=1, timestamp=0, withdrawn=(parse_prefix("8.8.8.0/24"),))
        encoder = MRTEncoder()
        encoder.write_update(update)
        decoded = decode_records(encoder.getvalue())[0].update
        assert decoded.withdrawn == update.withdrawn
        assert decoded.attributes is None


class TestDecoderErrors:
    def test_truncated_stream_rejected(self, attributes):
        blob = encode_records([3356], rib=[(parse_prefix("8.8.8.0/24"), [(3356, 0, attributes)])])
        with pytest.raises(MRTDecodeError):
            decode_records(blob[:-5])

    def test_garbage_header_rejected(self):
        with pytest.raises(MRTDecodeError):
            decode_records(b"\x00" * 12)

    def test_trailing_garbage_rejected(self):
        blob = encode_records([3356]) + b"\x01\x02"
        with pytest.raises(MRTDecodeError):
            decode_records(blob)

    def test_empty_stream_yields_nothing(self):
        assert decode_records(b"") == []

    def test_decoder_exposes_peer_table(self):
        blob = encode_records([10, 20])
        decoder = MRTDecoder(blob)
        list(decoder)
        assert decoder.peer_table is not None
        assert len(decoder.peer_table.peers) == 2


class TestZeroCopyDecoding:
    """The memoryview fast path decodes identically to the copying path."""

    def _mixed_blob(self, attributes):
        encoder = MRTEncoder()
        encoder.write_peer_index_table([3356, 1299], timestamp=9, view_name="rrc00")
        encoder.write_rib_entry(
            parse_prefix("8.8.8.0/24"), [(3356, 111, attributes)], sequence=1
        )
        encoder.write_rib_entry(
            parse_prefix("2001:db8::/32"), [(1299, 222, attributes)], sequence=2
        )
        for peer in (3356, 1299):
            encoder.write_update(
                BGPUpdate(
                    peer_asn=peer,
                    timestamp=1621382400,
                    announced=(parse_prefix("8.8.8.0/24"), parse_prefix("9.9.0.0/16")),
                    withdrawn=(parse_prefix("1.2.3.0/24"),),
                    attributes=attributes,
                )
            )
        return encoder.getvalue()

    def test_matches_copying_decode(self, attributes):
        blob = self._mixed_blob(attributes)
        assert decode_records(blob, zero_copy=True) == decode_records(blob, zero_copy=False)

    def test_records_do_not_retain_views(self, attributes):
        """Decoded records must not keep the input buffer alive via views."""
        blob = bytearray(self._mixed_blob(attributes))
        records = decode_records(blob, zero_copy=True)
        # Releasing the buffer would raise if any exported view survived.
        del records
        blob.clear()

    def test_accepts_memoryview_input(self, attributes):
        blob = self._mixed_blob(attributes)
        assert decode_records(memoryview(blob)) == decode_records(blob)

    def test_view_name_is_plain_str(self):
        encoder = MRTEncoder()
        encoder.write_peer_index_table([10], view_name="rrc01")
        (table,) = decode_records(encoder.getvalue())
        assert table.view_name == "rrc01"
        assert type(table.view_name) is str

    def test_truncated_stream_rejected_in_both_modes(self, attributes):
        blob = self._mixed_blob(attributes)
        for zero_copy in (True, False):
            with pytest.raises(MRTDecodeError):
                decode_records(blob[:-3], zero_copy=zero_copy)
