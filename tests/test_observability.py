"""/metrics observability: exposition validity, aggregation, lag, churn.

Pins the Prometheus contract of ``repro.service.metrics``:

* every ``/metrics`` line parses as valid text exposition format 0.0.4
  (``name{labels} value`` samples, ``# HELP`` / ``# TYPE`` headers, every
  sample preceded by its declaration);
* histograms are well-formed: cumulative ``le`` buckets ending in ``+Inf``,
  with ``_count`` equal to the ``+Inf`` bucket;
* the route table's ``metric_name`` values and the board slot layout come
  from one list (:data:`METRIC_ENDPOINTS`), so counters and the mmap board
  cannot drift apart;
* request / cache counters and store gauges move with real traffic, both
  single-worker (local recorder) and fleet-aggregated (worker board);
* per-follower replication-lag gauges appear when a follower identifies
  itself on changelog polls, across worker processes via the lag files;
* per-AS classification churn is rendered from the persisted change maps,
  cardinality-capped at :data:`CHURN_TOP_N`.
"""

from __future__ import annotations

import re

import pytest

from repro.service import (
    ClassificationServer,
    ClassificationService,
    MemoryBackend,
    ReplicaSyncer,
    ServiceClient,
    SnapshotStore,
    WorkerStatsBoard,
)
from repro.service.client import NotFoundError
from repro.service.metrics import (
    CHURN_TOP_N,
    LATENCY_BUCKETS,
    METRIC_ENDPOINTS,
    METRICS_CONTENT_TYPE,
    FileFollowerLag,
    MetricsRecorder,
    bucket_index,
    render_metrics,
)
from repro.service.server import ClassificationService as Service
from tests.test_backends import build_snapshots

#: One exposition sample: metric name, optional {labels}, numeric value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$"
)


@pytest.fixture()
def store(tmp_path):
    with SnapshotStore(tmp_path / "metrics.db") as snapshot_store:
        for snapshot in build_snapshots(3):
            snapshot_store.append_snapshot(snapshot)
        yield snapshot_store


def parse_exposition(text: str):
    """Validate exposition text; returns ``{name: {labels-tuple: value}}``."""
    samples = {}
    declared = set()
    for line in text.splitlines():
        assert line == line.strip() and line, f"stray whitespace: {line!r}"
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            declared.add(line.split()[2])
            continue
        assert SAMPLE_RE.match(line), f"invalid exposition line: {line!r}"
        name_and_labels, value = line.rsplit(" ", 1)
        name, _, labels = name_and_labels.partition("{")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in declared or base in declared, f"undeclared metric: {name}"
        samples.setdefault(name, {})[labels.rstrip("}")] = float(value)
    assert text.endswith("\n")
    return samples


def scrape(service) -> dict:
    response = service.handle("/metrics")
    assert response.status == 200
    assert response.content_type == METRICS_CONTENT_TYPE
    return parse_exposition(response.body.decode())


# ---------------------------------------------------------------------------------------
# Exposition format validity
# ---------------------------------------------------------------------------------------
class TestExpositionFormat:
    def test_every_line_parses(self, store):
        service = ClassificationService(store)
        for target in ("/healthz", "/v1/snapshot/latest", "/v1/as/10", "/nope"):
            service.handle(target)
        samples = scrape(service)
        assert "repro_http_requests_total" in samples
        assert "repro_store_generation" in samples

    def test_histogram_is_cumulative_and_ends_at_inf(self, store):
        service = ClassificationService(store)
        for _ in range(5):
            service.handle("/v1/snapshot/latest")
        samples = scrape(service)
        buckets = samples["repro_http_request_latency_seconds_bucket"]
        endpoint = 'endpoint="snapshot_latest"'
        series = [
            (labels, value)
            for labels, value in buckets.items()
            if labels.startswith(endpoint)
        ]
        assert len(series) == len(LATENCY_BUCKETS) + 1
        values = [value for _, value in series]
        assert values == sorted(values)  # cumulative, by construction
        inf = buckets[f'{endpoint},le="+Inf"']
        assert inf == 5
        count = samples["repro_http_request_latency_seconds_count"][endpoint]
        assert count == inf
        assert samples["repro_http_request_latency_seconds_sum"][endpoint] >= 0

    def test_bucket_index_matches_bounds(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(LATENCY_BUCKETS[0]) == 0
        assert bucket_index(LATENCY_BUCKETS[-1]) == len(LATENCY_BUCKETS) - 1
        assert bucket_index(LATENCY_BUCKETS[-1] + 1) == len(LATENCY_BUCKETS)

    def test_label_values_are_escaped(self):
        text = render_metrics(
            endpoints=MetricsRecorder().endpoint_stats(),
            store_stats={"generation": 1},
            followers={'evil"name\n': {"lag": 1.0}},
            churn_total=0,
            churn_top=[],
        )
        assert '\\"' in text and "\\n" in text
        parse_exposition(text)


# ---------------------------------------------------------------------------------------
# One source of truth for endpoint names
# ---------------------------------------------------------------------------------------
class TestEndpointConsistency:
    def test_route_table_metric_names_are_board_slots(self):
        table_names = {route.metric_name for route in Service.ROUTES}
        assert table_names <= set(METRIC_ENDPOINTS)
        # The catch-all for unroutable paths is a board slot too.
        assert "unknown" in METRIC_ENDPOINTS

    def test_route_table_flags_match_documented_sets(self):
        """The legacy VOLATILE/UNCACHED path sets and the table agree."""
        for route in Service.ROUTES:
            pattern_path = "/" + "/".join(
                part for part in route.pattern.split("/") if part
            )
            if pattern_path in Service.UNCACHED_PATHS:
                assert not route.cacheable, route.pattern
        exempt = {r.pattern for r in Service.ROUTES if not r.auth_required}
        assert exempt == {"/healthz", "/metrics"}


# ---------------------------------------------------------------------------------------
# Counters move with real traffic
# ---------------------------------------------------------------------------------------
class TestCounters:
    def test_requests_hits_errors_and_unknown(self, store):
        service = ClassificationService(store)
        service.handle("/v1/as/10")
        service.handle("/v1/as/10")  # cache hit
        service.handle("/v1/as/abc")  # 400
        service.handle("/totally/bogus")  # unroutable -> unknown
        samples = scrape(service)
        requests = samples["repro_http_requests_total"]
        assert requests['endpoint="as_info"'] == 3
        assert requests['endpoint="unknown"'] == 1
        assert samples["repro_http_request_errors_total"]['endpoint="as_info"'] == 1
        assert samples["repro_cache_hits_total"]['endpoint="as_info"'] == 1
        assert samples["repro_cache_misses_total"]['endpoint="as_info"'] == 1
        ratio = samples["repro_cache_hit_ratio"][""]
        assert 0.0 < ratio < 1.0

    def test_store_gauges_track_the_backend(self, store):
        service = ClassificationService(store)
        samples = scrape(service)
        assert samples["repro_store_generation"][""] == store.generation()
        assert samples["repro_store_snapshots"][""] == len(store)
        assert samples["repro_store_leader_epoch"][""] == 0
        store.bump_leader_epoch()
        assert scrape(service)["repro_store_leader_epoch"][""] == 1

    def test_fleet_aggregation_through_the_board(self, store):
        board = WorkerStatsBoard.create(2)
        try:
            services = [
                ClassificationService(store, worker_id=i, stats_sink=board)
                for i in range(2)
            ]
            services[0].handle("/v1/snapshot/latest")
            services[1].handle("/v1/snapshot/latest")
            services[1].handle("/v1/as/10")
            # Either worker answers the scrape with the fleet-wide sums.
            for service in services:
                samples = scrape(service)
                requests = samples["repro_http_requests_total"]
                assert requests['endpoint="snapshot_latest"'] == 2
                assert requests['endpoint="as_info"'] == 1
                assert samples["repro_serve_workers"][""] == 2
            aggregated = board.metrics_payload()
            assert aggregated["snapshot_latest"]["requests"] == 2
            assert sum(aggregated["snapshot_latest"]["buckets"]) == 2
        finally:
            board.close()


# ---------------------------------------------------------------------------------------
# Follower lag gauges
# ---------------------------------------------------------------------------------------
class TestFollowerLag:
    def test_named_follower_poll_appears_as_lag_gauge(self, store):
        follower = MemoryBackend()
        with ClassificationServer(store) as server:
            server.start()
            with ServiceClient(server.url) as client:
                syncer = ReplicaSyncer(client, follower, follower="replica-a")
                syncer.sync_once()
                # The first poll stated the full backlog at poll time.
                first = scrape(server.service)["repro_replication_follower_lag"]
                assert first['follower="replica-a"'] == store.generation()
                syncer.sync_once()  # caught up: the next poll reports 0
            samples = scrape(server.service)
        lag = samples["repro_replication_follower_lag"]
        assert lag['follower="replica-a"'] == 0.0

    def test_anonymous_polls_add_no_series(self, store):
        service = ClassificationService(store)
        service.handle("/v1/replication/changes?since=0")
        assert scrape(service).get("repro_replication_follower_lag", {}) == {}

    def test_lag_files_merge_across_workers(self, tmp_path, store):
        """Polls landing on different workers are merged at scrape time."""
        services = [
            ClassificationService(
                store,
                worker_id=worker_id,
                lag_tracker=FileFollowerLag(str(tmp_path), worker_id),
            )
            for worker_id in range(2)
        ]
        services[0].handle("/v1/replication/changes?since=1&follower=replica-a")
        services[1].handle("/v1/replication/changes?since=2&follower=replica-b")
        for service in services:  # either worker sees both followers
            lag = scrape(service)["repro_replication_follower_lag"]
            assert lag['follower="replica-a"'] == store.generation() - 1
            assert lag['follower="replica-b"'] == store.generation() - 2


# ---------------------------------------------------------------------------------------
# Classification churn
# ---------------------------------------------------------------------------------------
class TestChurn:
    def test_churn_totals_match_the_change_maps(self, store):
        expected = sum(len(store.changes(m.snapshot_id)) for m in store.snapshots())
        assert expected > 0
        service = ClassificationService(store)
        samples = scrape(service)
        assert samples["repro_classification_churn_total"][""] == expected
        per_as = samples["repro_as_classification_churn"]
        assert 0 < len(per_as) <= CHURN_TOP_N
        assert sum(per_as.values()) <= expected

    def test_churn_memoized_by_generation(self, store):
        service = ClassificationService(store)
        scrape(service)
        assert service._churn_cache is not None
        generation, total, top = service._churn_cache
        assert generation == store.generation()
        # A new commit invalidates the memo on the next scrape.
        store.append_snapshot(build_snapshots(4)[-1])
        scrape(service)
        assert service._churn_cache[0] == store.generation()


# ---------------------------------------------------------------------------------------
# Over HTTP: content type and the client helper
# ---------------------------------------------------------------------------------------
class TestMetricsOverHttp:
    def test_scrape_via_client(self, store):
        with ClassificationServer(store) as server:
            server.start()
            with ServiceClient(server.url) as client:
                client.health()
                with pytest.raises(NotFoundError):
                    client.snapshot(999_999)
                text = client.metrics_text()
        samples = parse_exposition(text)
        assert samples["repro_http_requests_total"]['endpoint="healthz"'] == 1
        assert samples["repro_http_request_errors_total"]['endpoint="snapshot_window"'] == 1
