"""Tests for the multi-process execution layer (repro.parallel).

The load-bearing property is *byte identity*: for any worker count, any
shard count, and both algorithms, the parallel batch pipeline and the
parallel stream engine must produce exactly the classification of their
serial counterparts — same counters, same codes, same observed ASes, same
unique-tuple order, same window snapshots.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgp.announcement import RouteObservation
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.bgp.prefix import parse_prefix
from repro.core.column import ColumnInference
from repro.core.pipeline import InferencePipeline
from repro.core.row import RowInference
from repro.parallel import (
    ParallelColumnInference,
    ParallelRowInference,
    ParallelStreamEngine,
    ShardProcessPool,
    parallel_unique_tuples,
    split_chunks,
)
from repro.sanitize.filters import SanitationConfig, Sanitizer
from repro.stream import MemorySource, ScenarioSource, StreamConfig, StreamEngine, WindowSpec


def result_fingerprint(result):
    """Everything that defines a classification outcome."""
    return (
        result.as_code_map(),
        result.store.state_dict(),
        set(result.observed_ases),
    )


@pytest.fixture(scope="module")
def feed(scenario_builder):
    from repro.usage.scenarios import ScenarioName

    dataset = scenario_builder.build(ScenarioName.RANDOM)
    return list(ScenarioSource(dataset.tuples, duration=86400, repeat=2))


@pytest.fixture(scope="module")
def tuples(feed):
    return Sanitizer().to_unique_tuples(feed)


# ---------------------------------------------------------------------------------------
class TestSplitChunks:
    def test_balanced_and_order_preserving(self):
        chunks = split_chunks(list(range(10)), 3)
        assert [len(chunk) for chunk in chunks] == [4, 3, 3]
        assert [item for chunk in chunks for item in chunk] == list(range(10))

    def test_more_parts_than_items(self):
        chunks = split_chunks([1, 2], 5)
        assert chunks == [[1], [2]]


# ---------------------------------------------------------------------------------------
class TestShardProcessPool:
    def test_process_batch_matches_serial_sanitizer(self, feed):
        sample = feed[:500]
        serial = Sanitizer()
        expected = serial.to_unique_tuples(sample)
        with ShardProcessPool(shards=4, workers=2) as pool:
            outcomes = pool.process_batch(list(enumerate(sample)))
            unique = [out[1] for _, _, out in outcomes if out is not None and out[1] is not None]
            stats = pool.sanitation_stats()
        assert unique == expected
        assert stats.as_dict() == serial.stats.as_dict()

    def test_state_round_trip(self, feed):
        with ShardProcessPool(shards=3, workers=2) as pool:
            pool.process_batch(list(enumerate(feed[:200])))
            states = pool.state_dicts()
            unique_before = pool.unique_tuples
        with ShardProcessPool(shards=3, workers=3) as pool:
            pool.load_state_dicts(states)
            assert pool.unique_tuples == unique_before
            # Known tuples stay deduplicated after the hand-off.
            outcomes = pool.process_batch(list(enumerate(feed[:200])))
            assert all(out is None or out[1] is None for _, _, out in outcomes)

    def test_rejects_unsharded_tuple_identity(self):
        with pytest.raises(ValueError):
            ShardProcessPool(
                shards=4, workers=2, sanitation=SanitationConfig(prepend_peer_asn=False)
            )

    def test_workers_clamped_to_shards(self):
        with ShardProcessPool(shards=2, workers=8) as pool:
            assert pool.workers == 2


# ---------------------------------------------------------------------------------------
class TestParallelInference:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_column_identical_to_serial(self, tuples, workers):
        serial = ColumnInference()
        parallel = ParallelColumnInference(workers=workers)
        expected = serial.run(tuples)
        actual = parallel.run(tuples)
        assert result_fingerprint(actual) == result_fingerprint(expected)
        assert parallel.report.columns_processed == serial.report.columns_processed
        assert (
            parallel.report.tagging_counts_per_column
            == serial.report.tagging_counts_per_column
        )
        assert (
            parallel.report.forwarding_counts_per_column
            == serial.report.forwarding_counts_per_column
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_row_identical_to_serial(self, tuples, workers):
        expected = RowInference().run(tuples)
        actual = ParallelRowInference(workers=workers).run(tuples)
        assert result_fingerprint(actual) == result_fingerprint(expected)

    def test_empty_input(self):
        assert len(ParallelColumnInference(workers=2).run([])) == 0
        assert len(ParallelRowInference(workers=2).run([])) == 0

    def test_small_inputs_take_the_serial_path(self, tuples):
        # Below MIN_PARALLEL_TUPLES no pool is spawned, but results agree.
        sample = tuples[:10]
        expected = ColumnInference().run(sample)
        actual = ParallelColumnInference(workers=4).run(sample)
        assert result_fingerprint(actual) == result_fingerprint(expected)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelColumnInference(workers=0)
        with pytest.raises(ValueError):
            ParallelRowInference(workers=-1)


# ---------------------------------------------------------------------------------------
class TestParallelBatchPipeline:
    def test_parallel_sanitation_matches_serial(self, feed):
        serial = Sanitizer()
        expected = serial.to_unique_tuples(feed)
        actual, stats = parallel_unique_tuples(feed, workers=3)
        assert actual == expected  # same tuples in the same first-appearance order
        assert stats.as_dict() == serial.stats.as_dict()

    @pytest.mark.parametrize("algorithm", ["column", "row"])
    def test_pipeline_workers_identical(self, feed, algorithm):
        serial = InferencePipeline(algorithm=algorithm).run_from_observations(feed)
        parallel = InferencePipeline(algorithm=algorithm, workers=4).run_from_observations(
            feed
        )
        assert result_fingerprint(parallel.result) == result_fingerprint(serial.result)
        assert parallel.tuples == serial.tuples
        assert parallel.sanitation.as_dict() == serial.sanitation.as_dict()
        assert parallel.observations_in == serial.observations_in

    def test_pipeline_workers_from_tuples(self, tuples):
        serial = InferencePipeline().run_from_tuples(tuples)
        parallel = InferencePipeline(workers=2).run_from_tuples(tuples)
        assert result_fingerprint(parallel.result) == result_fingerprint(serial.result)
        assert parallel.sanitized is False

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            InferencePipeline(workers=0)


# ---------------------------------------------------------------------------------------
class TestParallelStreamEngine:
    def snapshot_fingerprints(self, engine):
        return [
            (s.window_start, s.window_end, s.skipped_windows, s.events_total,
             s.unique_tuples, s.changed, result_fingerprint(s.result))
            for s in engine.snapshots
        ]

    @pytest.mark.parametrize("shards,workers", [(1, 1), (4, 2), (5, 3)])
    def test_identical_to_serial_engine(self, feed, shards, workers):
        config = StreamConfig(window=WindowSpec(size=3600), shards=shards)
        serial = StreamEngine(config)
        serial_result = serial.run(MemorySource(feed))
        parallel = ParallelStreamEngine(config, workers=workers, batch_size=128)
        parallel_result = parallel.run(MemorySource(feed))
        assert result_fingerprint(parallel_result) == result_fingerprint(serial_result)
        assert parallel.stats.events_in == serial.stats.events_in
        assert parallel.stats.windows_closed == serial.stats.windows_closed
        assert self.snapshot_fingerprints(parallel) == self.snapshot_fingerprints(serial)

    def test_sliding_policy_identical(self, feed):
        config = StreamConfig(
            window=WindowSpec(size=3600, policy="sliding", horizon=7200), shards=3
        )
        serial = StreamEngine(config)
        serial_result = serial.run(MemorySource(feed))
        parallel = ParallelStreamEngine(config, workers=2, batch_size=64)
        parallel_result = parallel.run(MemorySource(feed))
        assert result_fingerprint(parallel_result) == result_fingerprint(serial_result)
        assert parallel.stats.tuples_evicted == serial.stats.tuples_evicted
        assert self.snapshot_fingerprints(parallel) == self.snapshot_fingerprints(serial)

    def test_checkpoint_and_resume(self, feed, tmp_path):
        from repro.stream import CheckpointManager

        split = len(feed) // 2
        config = StreamConfig(window=WindowSpec(size=3600), shards=2)

        manager = CheckpointManager(tmp_path / "ckpt")
        first = ParallelStreamEngine(
            config, workers=2, batch_size=128, checkpoints=manager
        )
        first.run(MemorySource(feed[:split]), finish=False)
        first.checkpoint()

        resumed = ParallelStreamEngine.restore(manager)
        resumed.workers = 2
        resumed_result = resumed.run(MemorySource(feed[split:]))

        uninterrupted = StreamEngine(config).run(MemorySource(feed))
        assert result_fingerprint(resumed_result) == result_fingerprint(uninterrupted)

    def test_single_event_ingest_is_rejected(self, feed):
        engine = ParallelStreamEngine(StreamConfig(window=WindowSpec(size=3600)))
        with pytest.raises(NotImplementedError):
            engine.ingest(feed[0])


# ---------------------------------------------------------------------------------------
# Property test: workers=1 == workers=4 over random synthetic internets.
# ---------------------------------------------------------------------------------------

_asns = st.integers(min_value=1, max_value=50)
_path_lists = st.lists(_asns, min_size=1, max_size=6, unique=True)


@st.composite
def random_internets(draw):
    """A small random internet: observations with random paths/communities."""
    paths = draw(st.lists(_path_lists, min_size=1, max_size=40))
    observations = []
    for index, asns in enumerate(paths):
        tagged = draw(st.sets(st.sampled_from(asns)))
        observations.append(
            RouteObservation(
                collector="rrc00",
                peer_asn=asns[0],
                prefix=parse_prefix("8.8.8.0/24"),
                path=ASPath(asns),
                communities=CommunitySet.from_strings([f"{asn}:1" for asn in tagged]),
                timestamp=1000 + index,
            )
        )
    return observations


class TestWorkerCountInvariance:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(observations=random_internets(), algorithm=st.sampled_from(["column", "row"]))
    def test_workers_1_and_4_agree(self, monkeypatch_min_tuples, observations, algorithm):
        serial = InferencePipeline(algorithm=algorithm, workers=1).run_from_observations(
            observations
        )
        parallel = InferencePipeline(algorithm=algorithm, workers=4).run_from_observations(
            observations
        )
        assert result_fingerprint(parallel.result) == result_fingerprint(serial.result)
        assert parallel.tuples == serial.tuples

    @pytest.fixture(scope="class")
    def monkeypatch_min_tuples(self):
        # Force the chunk-parallel counting path even for tiny random inputs.
        import repro.parallel.inference as inference

        original = inference.MIN_PARALLEL_TUPLES
        inference.MIN_PARALLEL_TUPLES = 0
        yield
        inference.MIN_PARALLEL_TUPLES = original
