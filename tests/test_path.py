"""Unit tests for repro.bgp.path."""

import pytest

from repro.bgp.path import ASPath, PathSegment, SegmentType


class TestASPathBasics:
    def test_peer_and_origin(self):
        path = ASPath([3356, 1299, 64515])
        assert path.peer == 3356
        assert path.origin == 64515
        assert len(path) == 3

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            ASPath([])

    def test_from_string(self):
        path = ASPath.from_string("3356 1299 2914")
        assert path.asns == (3356, 1299, 2914)

    def test_from_string_with_as_set(self):
        path = ASPath.from_string("3356 1299 {65001,65002}")
        assert path.has_as_set
        assert path.asns == (3356, 1299)  # set members are not flattened

    def test_str_round_trip(self):
        path = ASPath([1, 2, 3])
        assert ASPath.from_string(str(path)) == path

    def test_equality_and_hash(self):
        assert ASPath([1, 2]) == ASPath([1, 2])
        assert ASPath([1, 2]) == (1, 2)
        assert hash(ASPath([1, 2])) == hash(ASPath([1, 2]))

    def test_contains_and_iteration(self):
        path = ASPath([10, 20, 30])
        assert 20 in path
        assert list(path) == [10, 20, 30]
        assert path[1] == 20


class TestPaperTerminology:
    def test_index_of_is_one_based(self):
        path = ASPath([10, 20, 30])
        assert path.index_of(10) == 1
        assert path.index_of(30) == 3

    def test_at(self):
        path = ASPath([10, 20, 30])
        assert path.at(1) == 10
        assert path.at(3) == 30
        with pytest.raises(IndexError):
            path.at(0)
        with pytest.raises(IndexError):
            path.at(4)

    def test_upstream_and_downstream(self):
        path = ASPath([10, 20, 30, 40])
        assert path.upstream_of(3) == (10, 20)
        assert path.downstream_of(3) == (40,)
        assert path.upstream_of(1) == ()
        assert path.downstream_of(4) == ()

    def test_upstream_out_of_range(self):
        with pytest.raises(IndexError):
            ASPath([1]).upstream_of(2)


class TestTransformations:
    def test_collapse_prepending(self):
        path = ASPath([10, 10, 20, 20, 20, 30])
        collapsed = path.collapse_prepending()
        assert collapsed.asns == (10, 20, 30)
        assert path.asns == (10, 10, 20, 20, 20, 30)  # original untouched

    def test_collapse_without_prepending_returns_self(self):
        path = ASPath([1, 2, 3])
        assert path.collapse_prepending() is path

    def test_has_prepending(self):
        assert ASPath([1, 1, 2]).has_prepending
        assert not ASPath([1, 2, 1]).has_prepending

    def test_has_loop_detects_nonconsecutive_repeat(self):
        assert ASPath([1, 2, 1]).has_loop
        assert not ASPath([1, 1, 2]).has_loop
        assert not ASPath([1, 2, 3]).has_loop

    def test_prepend_peer_adds_when_missing(self):
        path = ASPath([20, 30])
        assert path.prepend_peer(10).asns == (10, 20, 30)

    def test_prepend_peer_noop_when_present(self):
        path = ASPath([10, 20])
        assert path.prepend_peer(10) is path

    def test_without_as_sets(self):
        clean = ASPath([1, 2, 3])
        assert clean.without_as_sets() is clean
        dirty = ASPath.from_string("1 2 {3,4}")
        assert dirty.without_as_sets() is None


class TestSegments:
    def test_from_segments_flattens_sequences(self):
        segments = [
            PathSegment(SegmentType.AS_SEQUENCE, (1, 2)),
            PathSegment(SegmentType.AS_SEQUENCE, (3,)),
        ]
        assert ASPath.from_segments(segments).asns == (1, 2, 3)

    def test_segments_synthesised_for_plain_paths(self):
        path = ASPath([1, 2])
        assert len(path.segments) == 1
        assert path.segments[0].segment_type == SegmentType.AS_SEQUENCE

    def test_as_set_segment_detected(self):
        segments = [
            PathSegment(SegmentType.AS_SEQUENCE, (1,)),
            PathSegment(SegmentType.AS_SET, (2, 3)),
        ]
        path = ASPath.from_segments(segments)
        assert path.has_as_set
        assert path.asns == (1,)

    def test_segment_is_set_property(self):
        assert PathSegment(SegmentType.AS_SET, (1,)).is_set
        assert PathSegment(SegmentType.AS_CONFED_SET, (1,)).is_set
        assert not PathSegment(SegmentType.AS_SEQUENCE, (1,)).is_set

    def test_segment_coerces_types(self):
        segment = PathSegment(2, [1, 2])
        assert segment.segment_type == SegmentType.AS_SEQUENCE
        assert segment.asns == (1, 2)
