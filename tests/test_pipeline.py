"""Tests for the end-to-end inference pipeline (repro.core.pipeline).

Covers the three entry points, lazy-iterable ingestion, algorithm selection,
and the streaming equivalence property: a fully drained stream engine must
produce a classification identical to the batch pipeline over the same data.
"""

import pytest

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.community import CommunitySet
from repro.bgp.messages import BGPUpdate, PathAttributes
from repro.bgp.path import ASPath
from repro.bgp.prefix import parse_prefix
from repro.core.pipeline import InferencePipeline
from repro.mrt.encoder import MRTEncoder
from repro.sanitize.filters import SanitationStats
from repro.stream import MemorySource, ScenarioSource, StreamConfig, StreamEngine, WindowSpec

#: (path, communities) inputs with a clear tagger/forwarder structure.
SCENARIO = [
    ([10], ["10:1"]),
    ([20], []),
    ([30], ["30:1"]),
    ([10, 30], ["10:1", "30:1"]),
    ([20, 30], ["30:1"]),
    ([20, 30], ["30:1"]),  # duplicate announcement
]


def make_observations(items=SCENARIO):
    """Observations as a route collector would record them."""
    return [
        RouteObservation(
            collector="rrc00",
            peer_asn=asns[0],
            prefix=parse_prefix("8.8.8.0/24"),
            path=ASPath(asns),
            communities=CommunitySet.from_strings(comms),
            timestamp=1000 + index,
        )
        for index, (asns, comms) in enumerate(items)
    ]


def result_fingerprint(result):
    """Everything that defines a classification outcome."""
    return (
        result.as_code_map(),
        result.store.state_dict(),
        set(result.observed_ases),
    )


class TestRunFromObservations:
    def test_classifies_and_deduplicates(self):
        outcome = InferencePipeline().run_from_observations(make_observations())
        assert outcome.observations_in == len(SCENARIO)
        assert outcome.unique_tuples == len(SCENARIO) - 1  # one duplicate
        assert outcome.result.classification_of(10).tagging.code == "t"
        assert outcome.result.classification_of(20).tagging.code == "s"

    def test_accepts_lazy_iterables(self):
        eager = InferencePipeline().run_from_observations(make_observations())
        lazy = InferencePipeline().run_from_observations(
            observation for observation in make_observations()
        )
        assert lazy.observations_in == eager.observations_in == len(SCENARIO)
        assert result_fingerprint(lazy.result) == result_fingerprint(eager.result)
        assert lazy.sanitation.as_dict() == eager.sanitation.as_dict()

    def test_sanitation_stats_are_reported(self):
        # A private ASN on the path must be dropped and accounted for.
        items = SCENARIO + [([10, 64512], [])]
        outcome = InferencePipeline().run_from_observations(make_observations(items))
        assert outcome.sanitation.dropped_unallocated_asn == 1
        assert outcome.observations_in == len(items)


class TestRunFromTuples:
    def test_classifies_pre_sanitized_tuples(self):
        tuples = [
            PathCommTuple(ASPath(asns), CommunitySet.from_strings(comms))
            for asns, comms in SCENARIO
        ]
        outcome = InferencePipeline().run_from_tuples(tuples)
        assert outcome.unique_tuples == len(tuples)
        assert outcome.result.classification_of(30).tagging.code == "t"

    def test_zero_sanitation_is_reported_honestly(self):
        """Pre-sanitized tuples must not masquerade as raw observations."""
        tuples = [
            PathCommTuple(ASPath(asns), CommunitySet.from_strings(comms))
            for asns, comms in SCENARIO
        ]
        outcome = InferencePipeline().run_from_tuples(tuples)
        assert outcome.sanitized is False
        assert outcome.observations_in == 0
        assert outcome.sanitation.as_dict() == SanitationStats().as_dict()
        assert "observations_in" not in outcome.summary()
        assert outcome.summary()["unique_tuples"] == len(tuples)
        # The observation path still reports the raw count.
        sanitized = InferencePipeline().run_from_observations(make_observations())
        assert sanitized.sanitized is True
        assert sanitized.summary()["observations_in"] == len(SCENARIO)

    def test_accepts_generators(self):
        tuples = [
            PathCommTuple(ASPath(asns), CommunitySet.from_strings(comms))
            for asns, comms in SCENARIO
        ]
        outcome = InferencePipeline().run_from_tuples(iter(tuples))
        assert outcome.unique_tuples == len(tuples)


class TestRunFromMrt:
    @pytest.fixture()
    def blobs(self):
        encoder = MRTEncoder()
        for observation in make_observations():
            encoder.write_update(
                BGPUpdate(
                    peer_asn=observation.peer_asn,
                    timestamp=observation.timestamp,
                    announced=(observation.prefix,),
                    attributes=PathAttributes(
                        as_path=observation.path, communities=observation.communities
                    ),
                )
            )
        return {"rrc00": encoder.getvalue()}

    def test_matches_run_from_observations(self, blobs):
        from_mrt = InferencePipeline().run_from_mrt(blobs)
        from_observations = InferencePipeline().run_from_observations(make_observations())
        assert from_mrt.observations_in == from_observations.observations_in
        assert result_fingerprint(from_mrt.result) == result_fingerprint(
            from_observations.result
        )


class TestAlgorithmSelection:
    def test_row_algorithm_is_selectable(self):
        outcome = InferencePipeline(algorithm="row").run_from_observations(
            make_observations()
        )
        assert outcome.result.algorithm == "row"

    def test_unknown_algorithm_is_rejected(self):
        with pytest.raises(ValueError):
            InferencePipeline(algorithm="diagonal")

    def test_algorithms_may_disagree_but_both_classify(self):
        column = InferencePipeline(algorithm="column").run_from_observations(
            make_observations()
        )
        row = InferencePipeline(algorithm="row").run_from_observations(make_observations())
        assert column.result.algorithm == "column"
        assert len(column.result) == len(row.result)


class TestStreamingEquivalence:
    """Batch result == fully-drained stream result (the tentpole property)."""

    @pytest.fixture(scope="class")
    def feed(self, scenario_builder):
        from repro.usage.scenarios import ScenarioName

        dataset = scenario_builder.build(ScenarioName.RANDOM)
        return list(ScenarioSource(dataset.tuples, duration=86400, repeat=2))

    @pytest.mark.parametrize("algorithm", ["column", "row"])
    @pytest.mark.parametrize("shards", [1, 3])
    def test_stream_drain_equals_batch(self, feed, algorithm, shards):
        batch = InferencePipeline(algorithm=algorithm).run_from_observations(feed)
        engine = StreamEngine(
            StreamConfig(
                window=WindowSpec(size=3600), shards=shards, algorithm=algorithm
            )
        )
        streamed = engine.run(MemorySource(feed))
        assert engine.stats.windows_closed > 1
        assert engine.unique_tuples == batch.unique_tuples
        assert result_fingerprint(streamed) == result_fingerprint(batch.result)

    def test_stream_equivalence_out_of_order(self, feed):
        """Event order must not matter for the cumulative policy."""
        shuffled = list(reversed(feed))
        batch = InferencePipeline().run_from_observations(feed)
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=3600)))
        streamed = engine.run(MemorySource(shuffled))
        assert result_fingerprint(streamed) == result_fingerprint(batch.result)
