"""Unit tests for repro.bgp.prefix and the covering-lookup trie."""

import pickle
import random

import pytest

from repro.bgp.prefixtrie import PrefixTrie
from repro.bgp.prefix import (
    Prefix,
    PrefixAllocation,
    PrefixGenerator,
    is_special_use,
    parse_prefix,
)


class TestPrefix:
    def test_parse_ipv4(self):
        prefix = parse_prefix("192.0.2.0/24")
        assert prefix.is_ipv4
        assert prefix.length == 24
        assert str(prefix) == "192.0.2.0/24"

    def test_parse_ipv6(self):
        prefix = parse_prefix("2001:db8::/32")
        assert prefix.is_ipv6
        assert prefix.length == 32

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            Prefix.ipv4(0, 33)
        with pytest.raises(ValueError):
            Prefix.ipv6(0, 129)

    def test_invalid_afi_rejected(self):
        with pytest.raises(ValueError):
            Prefix(0, 8, afi=3)

    def test_network_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Prefix.ipv4(1 << 32, 8)

    def test_covers_more_specific(self):
        covering = parse_prefix("10.0.0.0/8")
        specific = parse_prefix("10.1.2.0/24")
        assert covering.covers(specific)
        assert not specific.covers(covering)

    def test_covers_self(self):
        prefix = parse_prefix("8.8.8.0/24")
        assert prefix.covers(prefix)

    def test_covers_rejects_cross_family(self):
        assert not parse_prefix("8.0.0.0/8").covers(parse_prefix("2001:db8::/32"))

    def test_ordering_and_hash(self):
        a = parse_prefix("8.8.8.0/24")
        b = parse_prefix("8.8.8.0/24")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_round_trip_via_network(self):
        prefix = parse_prefix("203.0.113.0/24")
        assert Prefix.from_string(str(prefix)) == prefix


class TestSpecialUse:
    @pytest.mark.parametrize(
        "text",
        ["10.0.0.0/8", "192.168.1.0/24", "127.0.0.0/8", "224.0.0.0/4", "198.51.100.0/24"],
    )
    def test_special_use_detected(self, text):
        assert is_special_use(parse_prefix(text))

    @pytest.mark.parametrize("text", ["8.8.8.0/24", "1.0.0.0/8", "151.101.0.0/16"])
    def test_public_space_not_special(self, text):
        assert not is_special_use(parse_prefix(text))

    def test_ipv6_not_checked(self):
        assert not is_special_use(parse_prefix("2001:db8::/32"))


class TestPrefixAllocation:
    def test_registered_block_covers_prefix(self):
        allocation = PrefixAllocation()
        allocation.register(parse_prefix("8.0.0.0/8"))
        assert allocation.is_allocated(parse_prefix("8.8.8.0/24"))
        assert not allocation.is_allocated(parse_prefix("9.9.9.0/24"))

    def test_special_use_never_allocated(self):
        allocation = PrefixAllocation.default_internet()
        assert not allocation.is_allocated(parse_prefix("10.0.0.0/24"))
        assert not allocation.is_allocated(parse_prefix("192.168.0.0/24"))

    def test_default_internet_covers_public_space(self):
        allocation = PrefixAllocation.default_internet()
        assert allocation.is_allocated(parse_prefix("8.8.8.0/24"))
        assert allocation.is_allocated(parse_prefix("151.101.0.0/16"))
        assert allocation.is_allocated(parse_prefix("2001:4860::/32"))

    def test_contains_protocol(self):
        allocation = PrefixAllocation.default_internet()
        assert parse_prefix("8.8.8.0/24") in allocation
        assert "8.8.8.0/24" not in allocation

    def test_register_many_and_len(self):
        allocation = PrefixAllocation()
        allocation.register_many([parse_prefix("8.0.0.0/8"), parse_prefix("9.0.0.0/8")])
        assert len(allocation) == 2


class TestPrefixGenerator:
    def test_prefixes_are_distinct(self):
        generator = PrefixGenerator()
        prefixes = generator.take(500)
        assert len(set(prefixes)) == 500

    def test_prefixes_are_allocated_public_space(self):
        generator = PrefixGenerator()
        allocation = PrefixAllocation.default_internet()
        for prefix in generator.take(100):
            assert allocation.is_allocated(prefix)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            PrefixGenerator().next_prefix(4)

    def test_default_length_is_24(self):
        assert PrefixGenerator().next_prefix().length == 24


class TestPrefixTrie:
    def _blocks(self):
        return [
            parse_prefix("10.0.0.0/8"),
            parse_prefix("10.1.0.0/16"),
            parse_prefix("192.0.2.0/24"),
            parse_prefix("2001:db8::/32"),
        ]

    def _trie(self):
        return PrefixTrie(self._blocks())

    def test_len_and_iteration(self):
        trie = self._trie()
        assert len(trie) == 4
        assert sorted(map(str, trie)) == sorted(map(str, self._blocks()))

    def test_exact_membership(self):
        trie = self._trie()
        assert parse_prefix("10.1.0.0/16") in trie
        assert parse_prefix("10.2.0.0/16") not in trie  # covered but not stored
        assert parse_prefix("10.0.0.0/9") not in trie

    def test_covering_returns_most_specific(self):
        trie = self._trie()
        assert trie.covering(parse_prefix("10.1.2.0/24")) == parse_prefix("10.1.0.0/16")
        assert trie.covering(parse_prefix("10.200.0.0/16")) == parse_prefix("10.0.0.0/8")
        assert trie.covering(parse_prefix("11.0.0.0/8")) is None

    def test_has_covering_respects_address_family(self):
        trie = self._trie()
        assert trie.has_covering(parse_prefix("2001:db8:1::/48"))
        # Same leading bits, different AFI: must not match the IPv4 space.
        assert not trie.has_covering(parse_prefix("2000::/3"))

    def test_less_specific_is_not_covered(self):
        trie = self._trie()
        assert not trie.has_covering(parse_prefix("192.0.0.0/16"))

    def test_insert_is_idempotent(self):
        trie = self._trie()
        trie.insert(parse_prefix("10.0.0.0/8"))
        assert len(trie) == 4

    def test_default_route_covers_everything(self):
        trie = PrefixTrie([parse_prefix("0.0.0.0/0")])
        assert trie.has_covering(parse_prefix("203.0.113.0/24"))
        assert trie.has_covering(parse_prefix("0.0.0.0/0"))

    def test_pickle_round_trip(self):
        restored = pickle.loads(pickle.dumps(self._trie()))
        assert sorted(map(str, restored)) == sorted(map(str, self._blocks()))
        assert restored.covering(parse_prefix("10.1.2.0/24")) == parse_prefix("10.1.0.0/16")

    def test_matches_linear_scan(self):
        rng = random.Random(42)
        blocks = [
            Prefix.ipv4(rng.getrandbits(8 + length) << (24 - length), 8 + length)
            for length in (0, 4, 8, 12, 16)
            for _ in range(20)
        ]
        trie = PrefixTrie(blocks)
        for _ in range(2000):
            probe_len = rng.randint(1, 32)
            probe = Prefix.ipv4(
                (rng.getrandbits(probe_len) << (32 - probe_len)) & 0xFFFFFFFF, probe_len
            )
            expected = any(block.covers(probe) for block in blocks)
            assert trie.has_covering(probe) == expected
            found = trie.covering(probe)
            if expected:
                assert found is not None and found.covers(probe)
                # Most specific among all covering blocks.
                assert found.length == max(
                    block.length for block in blocks if block.covers(probe)
                )
            else:
                assert found is None


class TestAllocationTrieCompat:
    def test_allocation_pickle_round_trip(self):
        allocation = PrefixAllocation.default_internet()
        restored = pickle.loads(pickle.dumps(allocation))
        assert restored.is_allocated(parse_prefix("1.2.3.0/24"))
        assert not restored.is_allocated(parse_prefix("240.0.0.0/8"))

    def test_pre_trie_pickle_rebuilds_lazily(self):
        """Checkpoints written before the trie existed lack ``_trie``."""
        allocation = PrefixAllocation.default_internet()
        legacy = PrefixAllocation.__new__(PrefixAllocation)
        legacy.__dict__ = {
            "blocks": list(allocation.blocks),
            "_by_afi": dict(allocation._by_afi),
        }
        assert legacy.is_allocated(parse_prefix("1.2.3.0/24"))
        assert not legacy.is_allocated(parse_prefix("10.1.0.0/16"))
        legacy.register(parse_prefix("10.0.0.0/8"))  # still special-use: stays out
        assert not legacy.is_allocated(parse_prefix("10.1.0.0/16"))

    def test_allocation_matches_linear_scan(self):
        allocation = PrefixAllocation.default_internet()
        rng = random.Random(7)
        for _ in range(2000):
            probe = Prefix.ipv4(rng.getrandbits(32), rng.randint(8, 32))
            linear = not is_special_use(probe) and any(
                block.covers(probe) for block in allocation.blocks
            )
            assert allocation.is_allocated(probe) == linear
