"""Unit tests for repro.bgp.prefix."""

import pytest

from repro.bgp.prefix import (
    Prefix,
    PrefixAllocation,
    PrefixGenerator,
    is_special_use,
    parse_prefix,
)


class TestPrefix:
    def test_parse_ipv4(self):
        prefix = parse_prefix("192.0.2.0/24")
        assert prefix.is_ipv4
        assert prefix.length == 24
        assert str(prefix) == "192.0.2.0/24"

    def test_parse_ipv6(self):
        prefix = parse_prefix("2001:db8::/32")
        assert prefix.is_ipv6
        assert prefix.length == 32

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            Prefix.ipv4(0, 33)
        with pytest.raises(ValueError):
            Prefix.ipv6(0, 129)

    def test_invalid_afi_rejected(self):
        with pytest.raises(ValueError):
            Prefix(0, 8, afi=3)

    def test_network_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Prefix.ipv4(1 << 32, 8)

    def test_covers_more_specific(self):
        covering = parse_prefix("10.0.0.0/8")
        specific = parse_prefix("10.1.2.0/24")
        assert covering.covers(specific)
        assert not specific.covers(covering)

    def test_covers_self(self):
        prefix = parse_prefix("8.8.8.0/24")
        assert prefix.covers(prefix)

    def test_covers_rejects_cross_family(self):
        assert not parse_prefix("8.0.0.0/8").covers(parse_prefix("2001:db8::/32"))

    def test_ordering_and_hash(self):
        a = parse_prefix("8.8.8.0/24")
        b = parse_prefix("8.8.8.0/24")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_round_trip_via_network(self):
        prefix = parse_prefix("203.0.113.0/24")
        assert Prefix.from_string(str(prefix)) == prefix


class TestSpecialUse:
    @pytest.mark.parametrize(
        "text",
        ["10.0.0.0/8", "192.168.1.0/24", "127.0.0.0/8", "224.0.0.0/4", "198.51.100.0/24"],
    )
    def test_special_use_detected(self, text):
        assert is_special_use(parse_prefix(text))

    @pytest.mark.parametrize("text", ["8.8.8.0/24", "1.0.0.0/8", "151.101.0.0/16"])
    def test_public_space_not_special(self, text):
        assert not is_special_use(parse_prefix(text))

    def test_ipv6_not_checked(self):
        assert not is_special_use(parse_prefix("2001:db8::/32"))


class TestPrefixAllocation:
    def test_registered_block_covers_prefix(self):
        allocation = PrefixAllocation()
        allocation.register(parse_prefix("8.0.0.0/8"))
        assert allocation.is_allocated(parse_prefix("8.8.8.0/24"))
        assert not allocation.is_allocated(parse_prefix("9.9.9.0/24"))

    def test_special_use_never_allocated(self):
        allocation = PrefixAllocation.default_internet()
        assert not allocation.is_allocated(parse_prefix("10.0.0.0/24"))
        assert not allocation.is_allocated(parse_prefix("192.168.0.0/24"))

    def test_default_internet_covers_public_space(self):
        allocation = PrefixAllocation.default_internet()
        assert allocation.is_allocated(parse_prefix("8.8.8.0/24"))
        assert allocation.is_allocated(parse_prefix("151.101.0.0/16"))
        assert allocation.is_allocated(parse_prefix("2001:4860::/32"))

    def test_contains_protocol(self):
        allocation = PrefixAllocation.default_internet()
        assert parse_prefix("8.8.8.0/24") in allocation
        assert "8.8.8.0/24" not in allocation

    def test_register_many_and_len(self):
        allocation = PrefixAllocation()
        allocation.register_many([parse_prefix("8.0.0.0/8"), parse_prefix("9.0.0.0/8")])
        assert len(allocation) == 2


class TestPrefixGenerator:
    def test_prefixes_are_distinct(self):
        generator = PrefixGenerator()
        prefixes = generator.take(500)
        assert len(set(prefixes)) == 500

    def test_prefixes_are_allocated_public_space(self):
        generator = PrefixGenerator()
        allocation = PrefixAllocation.default_internet()
        for prefix in generator.take(100):
            assert allocation.is_allocated(prefix)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            PrefixGenerator().next_prefix(4)

    def test_default_length_is_24(self):
        assert PrefixGenerator().next_prefix().length == 24
