"""Unit tests for the community propagation model (repro.usage.propagation)."""

import pytest

from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.topology.relationships import ASRelationships
from repro.usage.noise import NoiseConfig, NoiseInjector
from repro.usage.propagation import CommunityPropagator, TaggerCommunityPlan
from repro.usage.roles import RoleAssignment, SelectivePolicy, UsageRole


def roles_from(codes):
    """Build a role assignment from {asn: code} pairs."""
    return RoleAssignment({asn: UsageRole.from_code(code) for asn, code in codes.items()})


class TestTaggerCommunityPlan:
    def test_values_carry_tagger_asn(self):
        plan = TaggerCommunityPlan(seed=1)
        for community in plan.communities_for(3356):
            assert community.upper == 3356

    def test_32bit_tagger_uses_large_communities(self):
        plan = TaggerCommunityPlan(seed=1)
        assert all(c.is_large for c in plan.communities_for(200000))

    def test_plan_is_deterministic_and_cached(self):
        plan = TaggerCommunityPlan(seed=3)
        assert plan.communities_for(10) == plan.communities_for(10)
        assert plan.communities_for(10) == TaggerCommunityPlan(seed=3).communities_for(10)


class TestFormalModel:
    def test_all_tagger_forward_accumulates_everything(self):
        roles = roles_from({1: "tf", 2: "tf", 3: "tf"})
        propagator = CommunityPropagator(roles)
        output = propagator.output(ASPath([1, 2, 3]))
        assert output.has_upper(1)
        assert output.has_upper(2)
        assert output.has_upper(3)

    def test_silent_forward_passes_others_tags(self):
        roles = roles_from({1: "sf", 2: "sf", 3: "tf"})
        output = CommunityPropagator(roles).output(ASPath([1, 2, 3]))
        assert output.has_upper(3)
        assert not output.has_upper(1)
        assert not output.has_upper(2)

    def test_cleaner_removes_downstream_tags_but_keeps_own(self):
        roles = roles_from({1: "tc", 2: "tf", 3: "tf"})
        output = CommunityPropagator(roles).output(ASPath([1, 2, 3]))
        assert output.has_upper(1)
        assert not output.has_upper(2)
        assert not output.has_upper(3)

    def test_cleaner_in_the_middle_hides_origin(self):
        roles = roles_from({1: "sf", 2: "sc", 3: "tf"})
        output = CommunityPropagator(roles).output(ASPath([1, 2, 3]))
        assert output == CommunitySet.empty()

    def test_silent_cleaner_produces_empty_output(self):
        roles = roles_from({1: "sc", 2: "tf"})
        assert CommunityPropagator(roles).output(ASPath([1, 2])) == CommunitySet.empty()

    def test_single_as_path(self):
        roles = roles_from({1: "tf"})
        assert CommunityPropagator(roles).output(ASPath([1])).has_upper(1)

    def test_missing_role_raises_without_default(self):
        propagator = CommunityPropagator(roles_from({1: "tf"}))
        with pytest.raises(KeyError):
            propagator.output(ASPath([1, 2]))

    def test_default_role_used_for_unknown_ases(self):
        propagator = CommunityPropagator(
            roles_from({1: "sf"}), default_role=UsageRole.from_code("tf")
        )
        output = propagator.output(ASPath([1, 2]))
        assert output.has_upper(2)

    def test_output_is_union_of_tagging_and_forwarding(self):
        roles = roles_from({1: "tf", 2: "sf", 3: "tf"})
        propagator = CommunityPropagator(roles)
        path = ASPath([1, 2, 3])
        manual = propagator.tagging(1, None) | propagator.forwarding(
            1, propagator.tagging(2, 1) | propagator.forwarding(2, propagator.tagging(3, 2))
        )
        assert propagator.output(path) == manual


class TestSelectiveTagging:
    @pytest.fixture()
    def relationships(self):
        rel = ASRelationships()
        rel.add_p2c(1, 2)  # 1 is provider of 2
        rel.add_p2c(2, 3)  # 2 is provider of 3
        return rel

    def test_not_to_providers_suppresses_tag_towards_provider(self, relationships):
        roles = RoleAssignment(
            {
                1: UsageRole.from_code("sf"),
                2: UsageRole.from_code("sf"),
                3: UsageRole.from_code("tf", SelectivePolicy.NOT_TO_PROVIDERS),
            }
        )
        propagator = CommunityPropagator(roles, relationships=relationships)
        # 3 exports towards its provider 2: no tag.
        assert not propagator.output(ASPath([1, 2, 3])).has_upper(3)

    def test_selective_tagger_still_tags_towards_collector(self, relationships):
        roles = RoleAssignment({3: UsageRole.from_code("tf", SelectivePolicy.ONLY_TO_CUSTOMERS)})
        propagator = CommunityPropagator(roles, relationships=relationships)
        # As collector peer (A_1) the receiver is the collector itself.
        assert propagator.output(ASPath([3])).has_upper(3)

    def test_selective_without_relationships_degrades_to_tagging(self):
        roles = RoleAssignment(
            {1: UsageRole.from_code("sf"), 2: UsageRole.from_code("tf", SelectivePolicy.ONLY_TO_CUSTOMERS)}
        )
        propagator = CommunityPropagator(roles, relationships=None)
        assert propagator.output(ASPath([1, 2])).has_upper(2)


class TestNoiseInjection:
    def test_noise_adds_upstream_named_communities(self):
        roles = roles_from({1: "sf", 2: "sf", 3: "sf"})
        propagator = CommunityPropagator(roles)
        path = ASPath([1, 2, 3])
        extra = {3: CommunitySet.from_strings(["2:666"])}
        output = propagator.output_with_extra(path, extra)
        assert output.has_upper(2)

    def test_injected_noise_subject_to_upstream_cleaning(self):
        roles = roles_from({1: "sf", 2: "sc", 3: "sf"})
        propagator = CommunityPropagator(roles)
        extra = {3: CommunitySet.from_strings(["1:666"])}
        assert propagator.output_with_extra(ASPath([1, 2, 3]), extra) == CommunitySet.empty()

    def test_injector_respects_share_of_ases(self):
        injector = NoiseInjector(NoiseConfig(share_of_ases=0.5, seed=1), range(1000))
        assert abs(len(injector.noisy_ases) - 500) <= 1

    def test_injector_disabled_produces_nothing(self):
        injector = NoiseInjector(NoiseConfig(share_of_ases=0.0), range(10))
        assert injector.extra_for_path(ASPath([1, 2, 3])) == {}

    def test_injector_extra_indices_are_valid(self):
        config = NoiseConfig(share_of_ases=1.0, p_action_community=1.0, p_origin_community=1.0, seed=2)
        injector = NoiseInjector(config, range(10))
        path = ASPath([0, 1, 2, 3])
        extra = injector.extra_for_path(path)
        assert extra
        assert all(2 <= index <= len(path) for index in extra)
        # Action communities name the upstream neighbour; origin communities the origin.
        for index, communities in extra.items():
            for community in communities:
                assert community.upper in (path.at(index - 1), path.origin)
