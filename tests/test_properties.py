"""Property-based tests (hypothesis) for core data structures and invariants."""

import pickle

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.community import Community, CommunitySet, LargeCommunity
from repro.bgp.messages import BGPUpdate, PathAttributes
from repro.bgp.path import ASPath
from repro.bgp.prefix import Prefix
from repro.core.classes import ForwardingClass, TaggingClass
from repro.core.column import ColumnInference
from repro.core.counters import ASCounters, CounterStore, PackedCounterStore
from repro.core.row import RowInference
from repro.core.thresholds import Thresholds
from repro.mrt.decoder import decode_path_attributes, decode_records
from repro.mrt.encoder import encode_path_attributes, encode_records
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.window import WindowPolicy, WindowSpec
from repro.usage.propagation import CommunityPropagator
from repro.usage.roles import RoleAssignment, UsageRole

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

public_16bit_asns = st.integers(min_value=1, max_value=64000)
public_asns = st.one_of(public_16bit_asns, st.integers(min_value=131072, max_value=400000))

regular_communities = st.builds(
    Community, upper=st.integers(0, 0xFFFF), lower=st.integers(0, 0xFFFF)
)
large_communities = st.builds(
    LargeCommunity,
    upper=st.integers(0, 0xFFFFFFFF),
    data1=st.integers(0, 0xFFFFFFFF),
    data2=st.integers(0, 0xFFFFFFFF),
)
communities = st.one_of(regular_communities, large_communities)
community_sets = st.lists(communities, max_size=8).map(CommunitySet)

as_paths = st.lists(public_asns, min_size=1, max_size=8, unique=True).map(ASPath)

ipv4_prefixes = st.builds(
    lambda length, bits: Prefix.ipv4((bits << (32 - length)) & 0xFFFFFFFF, length),
    st.integers(min_value=8, max_value=32),
    st.integers(min_value=0, max_value=2**24 - 1),
)

role_codes = st.sampled_from(["tf", "tc", "sf", "sc"])


# ---------------------------------------------------------------------------
# Community / community set properties
# ---------------------------------------------------------------------------

class TestCommunityProperties:
    @given(regular_communities)
    def test_regular_string_round_trip(self, community):
        assert Community.from_string(str(community)) == community

    @given(regular_communities)
    def test_regular_value_round_trip(self, community):
        assert Community.from_value(community.value) == community

    @given(large_communities)
    def test_large_string_round_trip(self, community):
        assert LargeCommunity.from_string(str(community)) == community

    @given(st.lists(communities, max_size=10), st.lists(communities, max_size=10))
    def test_union_is_commutative_and_idempotent(self, a, b):
        left = CommunitySet(a) | CommunitySet(b)
        right = CommunitySet(b) | CommunitySet(a)
        assert left == right
        assert (left | left) == left

    @given(community_sets)
    def test_upper_fields_match_membership(self, communities_set):
        for community in communities_set:
            assert communities_set.has_upper(community.upper)
        for upper in communities_set.upper_fields():
            assert len(communities_set.with_upper(upper)) >= 1

    @given(community_sets)
    def test_regular_large_partition(self, communities_set):
        assert len(communities_set.regular()) + len(communities_set.large()) == len(communities_set)


# ---------------------------------------------------------------------------
# AS path properties
# ---------------------------------------------------------------------------

class TestPathProperties:
    @given(st.lists(public_asns, min_size=1, max_size=12))
    def test_collapse_prepending_is_idempotent_and_loses_no_asns(self, asns):
        path = ASPath(asns)
        collapsed = path.collapse_prepending()
        assert not collapsed.has_prepending
        assert collapsed.unique_asns() == path.unique_asns()
        assert collapsed.collapse_prepending() == collapsed

    @given(as_paths)
    def test_string_round_trip(self, path):
        assert ASPath.from_string(str(path)) == path

    @given(as_paths)
    def test_upstream_downstream_partition(self, path):
        for index in range(1, len(path) + 1):
            upstream = path.upstream_of(index)
            downstream = path.downstream_of(index)
            assert upstream + (path.at(index),) + downstream == path.asns


# ---------------------------------------------------------------------------
# MRT codec properties
# ---------------------------------------------------------------------------

class TestMRTProperties:
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(as_paths, community_sets)
    def test_path_attribute_round_trip(self, path, communities_set):
        attributes = PathAttributes(as_path=path, communities=communities_set)
        decoded = decode_path_attributes(encode_path_attributes(attributes), asn_size=4)
        assert decoded.as_path == path
        assert decoded.communities == communities_set

    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(as_paths, community_sets, st.lists(ipv4_prefixes, min_size=1, max_size=3, unique=True))
    def test_update_round_trip(self, path, communities_set, prefixes):
        update = BGPUpdate(
            peer_asn=path.peer,
            timestamp=1621382400,
            announced=tuple(prefixes),
            attributes=PathAttributes(as_path=path, communities=communities_set),
        )
        blob = encode_records([path.peer], updates=[update])
        decoded = decode_records(blob)[-1].update
        assert decoded.announced == tuple(prefixes)
        assert decoded.attributes.as_path == path
        assert decoded.attributes.communities == communities_set


# ---------------------------------------------------------------------------
# Propagation model properties
# ---------------------------------------------------------------------------

class TestPropagationProperties:
    @settings(max_examples=100)
    @given(st.lists(public_asns, min_size=1, max_size=7, unique=True), st.data())
    def test_output_upper_fields_are_subset_of_path(self, asns, data):
        """Without noise, every community in output(A_1) names an on-path AS."""
        roles = RoleAssignment(
            {asn: UsageRole.from_code(data.draw(role_codes)) for asn in asns}
        )
        output = CommunityPropagator(roles).output(ASPath(asns))
        assert output.upper_fields() <= set(asns)

    @settings(max_examples=100)
    @given(st.lists(public_asns, min_size=1, max_size=7, unique=True), st.data())
    def test_peer_tag_present_iff_peer_is_tagger(self, asns, data):
        roles = RoleAssignment(
            {asn: UsageRole.from_code(data.draw(role_codes)) for asn in asns}
        )
        output = CommunityPropagator(roles).output(ASPath(asns))
        peer = asns[0]
        assert output.has_upper(peer) == roles[peer].is_tagger

    @settings(max_examples=100)
    @given(st.lists(public_asns, min_size=2, max_size=7, unique=True), st.data())
    def test_cleaner_peer_blocks_all_downstream_tags(self, asns, data):
        roles = RoleAssignment(
            {asn: UsageRole.from_code(data.draw(role_codes)) for asn in asns}
        )
        output = CommunityPropagator(roles).output(ASPath(asns))
        if roles[asns[0]].is_cleaner:
            assert output.upper_fields() <= {asns[0]}

    @settings(max_examples=100)
    @given(st.lists(public_asns, min_size=2, max_size=7, unique=True), st.data())
    def test_downstream_tag_visible_iff_all_upstream_forward(self, asns, data):
        roles = RoleAssignment(
            {asn: UsageRole.from_code(data.draw(role_codes)) for asn in asns}
        )
        output = CommunityPropagator(roles).output(ASPath(asns))
        origin = asns[-1]
        upstream_forward = all(roles[asn].is_forward for asn in asns[:-1])
        expected = roles[origin].is_tagger and upstream_forward
        assert output.has_upper(origin) == expected


# ---------------------------------------------------------------------------
# Counter and inference properties
# ---------------------------------------------------------------------------

class TestInferenceProperties:
    @given(st.integers(0, 500), st.integers(0, 500), st.integers(0, 500), st.integers(0, 500))
    def test_counter_shares_sum_to_one_with_evidence(self, t, s, f, c):
        counters = ASCounters(t, s, f, c)
        if counters.tagging_total:
            assert counters.tagger_share() + counters.silent_share() == 1.0
        if counters.forwarding_total:
            assert counters.forward_share() + counters.cleaner_share() == 1.0

    @given(st.integers(1, 400), st.integers(0, 400))
    def test_tagger_and_silent_thresholds_mutually_exclusive(self, t, s):
        store = CounterStore(Thresholds.uniform(0.99))
        counters = store.counters_for(1)
        counters.tagger, counters.silent = t, s
        assert not (store.is_tagger(1) and store.is_silent(1))

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(
                st.lists(public_16bit_asns, min_size=1, max_size=5, unique=True),
                st.lists(st.integers(1, 64000), max_size=3),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_inference_never_crashes_and_only_classifies_observed_ases(self, raw):
        tuples = [
            PathCommTuple(
                ASPath(asns), CommunitySet(Community(upper, 1) for upper in uppers)
            )
            for asns, uppers in raw
        ]
        result = ColumnInference().run(tuples)
        observed = {asn for asns, _ in raw for asn in asns}
        assert result.observed_ases == observed
        for asn in observed:
            classification = result.classification_of(asn)
            assert classification.tagging in TaggingClass
            assert classification.forwarding in ForwardingClass
        # Counters only exist for observed ASes.
        for asn in result.store:
            assert asn in observed

    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(
                st.lists(public_16bit_asns, min_size=1, max_size=5),
                st.lists(st.integers(1, 64000), max_size=3),
            ),
            max_size=25,
        )
    )
    def test_columnar_batch_inference_matches_object(self, raw):
        """The interned/packed counting path is a pure representation change."""
        tuples = [
            PathCommTuple(
                ASPath(asns), CommunitySet(Community(upper, 1) for upper in uppers)
            )
            for asns, uppers in raw
        ]
        for cls in (ColumnInference, RowInference):
            obj = cls().run(tuples)
            col = cls(representation="columnar").run(tuples)
            assert col.store.state_dict() == obj.store.state_dict()
            assert col.observed_ases == obj.observed_ases
            assert col.as_code_map() == obj.as_code_map()

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_perfect_precision_on_random_consistent_roles(self, data):
        """On any consistent ground truth the algorithm never misclassifies."""
        asns = data.draw(st.lists(public_16bit_asns, min_size=3, max_size=10, unique=True))
        # Build a small star of paths around a common peer so knowledge can bootstrap.
        peer = asns[0]
        paths = [ASPath([peer])] + [ASPath([peer, other]) for other in asns[1:]]
        roles = RoleAssignment(
            {asn: UsageRole.from_code(data.draw(role_codes)) for asn in asns}
        )
        propagator = CommunityPropagator(roles)
        tuples = [PathCommTuple(path, propagator.output(path)) for path in paths]
        result = ColumnInference().run(tuples)
        for asn in asns:
            classification = result.classification_of(asn)
            if classification.tagging is TaggingClass.TAGGER:
                assert roles[asn].is_tagger
            if classification.tagging is TaggingClass.SILENT:
                assert roles[asn].is_silent
            if classification.forwarding is ForwardingClass.FORWARD:
                assert roles[asn].is_forward
            if classification.forwarding is ForwardingClass.CLEANER:
                assert roles[asn].is_cleaner


# ---------------------------------------------------------------------------
# Columnar streaming conformance properties
# ---------------------------------------------------------------------------

#: Raw observation streams: (asns, comm-uppers, timestamp-gap) per event.
#: Small AS universe so duplicates, retractions, and dedup hits all occur.
observation_streams = st.lists(
    st.tuples(
        st.lists(st.integers(10, 40), min_size=1, max_size=5),
        st.lists(st.integers(10, 45), max_size=3),
        st.integers(0, 400),
    ),
    max_size=30,
)


def _build_observations(raw):
    observations = []
    clock = 0
    for index, (asns, uppers, gap) in enumerate(raw):
        clock += gap
        observations.append(
            RouteObservation(
                collector="prop",
                peer_asn=asns[0],
                prefix=Prefix.ipv4((20 << 24) | (index << 8), 24),
                path=ASPath(asns),
                communities=CommunitySet(Community(upper, 1) for upper in uppers),
                timestamp=clock,
            )
        )
    return observations


def _engine_outcome(engine):
    result = engine.finish()
    return (
        result.store.state_dict(),
        sorted(result.observed_ases),
        [
            (s.window_start, s.window_end, s.events_total, s.result.store.state_dict())
            for s in engine.snapshots
        ],
        engine.sanitation_stats().as_dict(),
    )


class TestColumnarStreamProperties:
    """Representation choice must be observationally invisible end to end."""

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(observation_streams, st.sampled_from(["column", "row"]))
    def test_sliding_stream_matches_object(self, raw, algorithm):
        """Sliding windows evict (retract) tuples; both paths must agree."""
        observations = _build_observations(raw)
        spec = WindowSpec(size=200, policy=WindowPolicy.SLIDING, horizon=400)
        outcomes = []
        for representation in ("object", "columnar"):
            config = StreamConfig(
                window=spec, shards=2, algorithm=algorithm, representation=representation
            )
            engine = StreamEngine(config)
            for observation in observations:
                engine.ingest(observation)
            outcomes.append(_engine_outcome(engine))
        assert outcomes[0] == outcomes[1]

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(observation_streams, st.data())
    def test_checkpoint_restore_is_transparent(self, raw, data):
        """Pickling state mid-stream and resuming changes nothing."""
        observations = _build_observations(raw)
        cut = data.draw(st.integers(0, len(observations)))
        spec = WindowSpec(size=200, policy=WindowPolicy.SLIDING, horizon=400)
        config = StreamConfig(
            window=spec, shards=2, algorithm="column", representation="columnar"
        )

        straight = StreamEngine(config)
        for observation in observations:
            straight.ingest(observation)

        engine = StreamEngine(config)
        for observation in observations[:cut]:
            engine.ingest(observation)
        state = pickle.loads(pickle.dumps(engine.state_dict()))
        resumed = StreamEngine(config)
        resumed.load_state_dict(state)
        for observation in observations[cut:]:
            resumed.ingest(observation)
        resumed_outcome = _engine_outcome(resumed)
        straight_outcome = _engine_outcome(straight)
        # Snapshot *history* is in-memory only (not checkpointed), so the
        # resumed engine holds a suffix of the uninterrupted run's snapshots.
        assert resumed_outcome[:2] == straight_outcome[:2]
        resumed_snapshots, straight_snapshots = resumed_outcome[2], straight_outcome[2]
        if resumed_snapshots:
            assert straight_snapshots[-len(resumed_snapshots):] == resumed_snapshots
        assert resumed_outcome[3] == straight_outcome[3]

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 15),
            st.tuples(*(st.integers(0, 1000) for _ in range(4))).map(list),
            max_size=16,
        ),
        st.lists(st.floats(0.05, 0.95), max_size=4),
    )
    def test_packed_decay_matches_object_decay(self, deltas, factors):
        as_values = tuple(range(100, 116))
        packed = PackedCounterStore(slots=len(as_values))
        store = CounterStore()
        packed.apply_delta(deltas)
        store.apply_delta({as_values[idx]: delta for idx, delta in deltas.items()})
        for factor in factors:
            packed.decay(factor)
            store.decay(factor)
            assert packed.state_dict(as_values) == store.state_dict()


class TestDecoderZeroCopyProperties:
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(as_paths, community_sets, st.lists(ipv4_prefixes, min_size=1, max_size=3, unique=True))
    def test_zero_copy_decode_matches_copying_decode(self, path, communities_set, prefixes):
        update = BGPUpdate(
            peer_asn=path.peer,
            timestamp=1621382400,
            announced=tuple(prefixes),
            attributes=PathAttributes(as_path=path, communities=communities_set),
        )
        blob = encode_records([path.peer], updates=[update])
        assert decode_records(blob, zero_copy=True) == decode_records(blob, zero_copy=False)
