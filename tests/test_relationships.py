"""Unit tests for AS relationships (repro.topology.relationships)."""

import io

import pytest

from repro.topology.relationships import ASRelationships, Relationship


@pytest.fixture()
def relationships():
    rel = ASRelationships()
    rel.add_p2c(1, 2)   # 1 provides transit to 2
    rel.add_p2c(1, 3)
    rel.add_p2c(2, 4)
    rel.add_p2p(2, 3)
    return rel


class TestEdges:
    def test_providers_and_customers(self, relationships):
        assert relationships.providers_of(2) == {1}
        assert relationships.customers_of(1) == {2, 3}
        assert relationships.customers_of(4) == frozenset()

    def test_peers(self, relationships):
        assert relationships.peers_of(2) == {3}
        assert relationships.peers_of(3) == {2}

    def test_neighbors(self, relationships):
        assert relationships.neighbors_of(2) == {1, 3, 4}

    def test_relationship_perspective(self, relationships):
        assert relationships.relationship(2, 1) is Relationship.PROVIDER
        assert relationships.relationship(1, 2) is Relationship.CUSTOMER
        assert relationships.relationship(2, 3) is Relationship.PEER
        assert relationships.relationship(2, 99) is Relationship.NONE

    def test_self_edges_rejected(self):
        rel = ASRelationships()
        with pytest.raises(ValueError):
            rel.add_p2c(1, 1)
        with pytest.raises(ValueError):
            rel.add_p2p(2, 2)

    def test_degree_and_ases(self, relationships):
        assert relationships.degree(2) == 3
        assert relationships.ases() == {1, 2, 3, 4}

    def test_is_leaf(self, relationships):
        assert relationships.is_leaf(4)
        assert not relationships.is_leaf(1)

    def test_edge_iterators_and_count(self, relationships):
        assert set(relationships.p2c_edges()) == {(1, 2), (1, 3), (2, 4)}
        assert list(relationships.p2p_edges()) == [(2, 3)]
        assert relationships.edge_count() == 4


class TestCaidaFormat:
    def test_round_trip(self, relationships):
        lines = relationships.to_caida_lines()
        parsed = ASRelationships.from_caida_lines(lines)
        assert set(parsed.p2c_edges()) == set(relationships.p2c_edges())
        assert set(parsed.p2p_edges()) == set(relationships.p2p_edges())

    def test_dump_stream(self, relationships):
        buffer = io.StringIO()
        relationships.dump(buffer)
        assert "1|2|-1" in buffer.getvalue()
        assert "2|3|0" in buffer.getvalue()

    def test_comments_and_blank_lines_skipped(self):
        parsed = ASRelationships.from_caida_lines(["# comment", "", "1|2|-1"])
        assert parsed.relationship(1, 2) is Relationship.CUSTOMER

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError):
            ASRelationships.from_caida_lines(["1|2"])
        with pytest.raises(ValueError):
            ASRelationships.from_caida_lines(["1|2|5"])


class TestAcyclicity:
    def test_dag_is_acyclic(self, relationships):
        assert relationships.validate_acyclic()

    def test_cycle_detected(self):
        rel = ASRelationships()
        rel.add_p2c(1, 2)
        rel.add_p2c(2, 3)
        rel.add_p2c(3, 1)
        assert not rel.validate_acyclic()
