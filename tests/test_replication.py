"""Tests for cross-host store replication (repro.service.replication).

Covers the leader's changelog endpoint (paging, generation addressing, the
pruning horizon), the follower syncer (convergence to byte-identical served
payloads, exactly-once resume after a mid-sync kill, explicit errors when
leader retention outruns a lagging follower, bootstrap of an empty follower
from an already-pruned leader), the schema v1 -> v2 migration the
generation column required, and the ``repro replicate`` CLI wiring.
"""

from __future__ import annotations

import sqlite3
from collections import Counter

import pytest

from repro.service import (
    ClassificationServer,
    ReplicaSyncer,
    ReplicationError,
    ServiceClient,
    ServiceError,
    SnapshotStore,
    StoreError,
    attach_store,
    snapshot_from_payload,
    snapshot_payload,
)
from repro.stream import MemorySource, StreamConfig, StreamEngine, WindowSpec
from tests.test_stream import observation


def feed(count, *, start=0, step=25):
    """A deterministic little update feed closing several 100s windows."""
    return [
        observation([10, 20], ["10:1"], timestamp=start + index * step)
        for index in range(count)
    ]


@pytest.fixture()
def leader(tmp_path):
    """A drained leader store with several window snapshots."""
    with SnapshotStore(tmp_path / "leader.db") as store:
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        attach_store(engine, store)
        engine.run(MemorySource(feed(32)))
        yield engine, store


@pytest.fixture()
def leader_served(leader):
    """The leader behind a live HTTP server + a connected client."""
    engine, store = leader
    with ClassificationServer(store) as server:
        server.start()
        with ServiceClient(server.url) as client:
            yield engine, store, server, client


#: The deterministic endpoints replication must serve byte-identically.
def identity_targets(engine):
    targets = ["/v1/snapshot/latest", "/v1/diff"]
    final = engine.snapshots[-1]
    targets.append(f"/v1/snapshot/{final.window_end}")
    targets.append(f"/v1/diff?window={engine.snapshots[0].window_end}")
    for asn in sorted(final.result.observed_ases):
        targets.append(f"/v1/as/{asn}")
        targets.append(f"/v1/as/{asn}?history=3")
    return targets


# ---------------------------------------------------------------------------------------
# Store-level: generation addressing
# ---------------------------------------------------------------------------------------
class TestGenerationAddressing:
    def test_snapshots_record_commit_generations(self, leader):
        engine, store = leader
        metas = store.snapshots()
        assert [meta.generation for meta in metas] == list(range(1, len(metas) + 1))
        assert store.generation() == metas[-1].generation

    def test_snapshots_since_pages_in_commit_order(self, leader):
        _, store = leader
        everything = store.snapshots_since(0)
        assert everything == store.snapshots()
        page = store.snapshots_since(0, limit=3)
        assert page == everything[:3]
        rest = store.snapshots_since(page[-1].generation)
        assert page + rest == everything
        assert store.snapshots_since(store.generation()) == []

    def test_snapshots_since_rejects_bad_arguments(self, leader):
        _, store = leader
        with pytest.raises(ValueError):
            store.snapshots_since(-1)
        with pytest.raises(ValueError):
            store.snapshots_since(0, limit=0)

    def test_retention_moves_pruned_through(self, tmp_path):
        with SnapshotStore(tmp_path / "pruned.db", retention=3) as store:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
            attach_store(engine, store)
            engine.run(MemorySource(feed(32)))
            assert len(store) == 3
            retained = store.snapshots()
            # Everything retained is above the horizon: a follower at or
            # past the horizon reads a gap-free changelog.
            assert store.pruned_through() > 0
            assert all(meta.generation > store.pruned_through() for meta in retained)

    def test_applied_generation_is_durable_and_monotonic(self, tmp_path):
        path = tmp_path / "replica.db"
        with SnapshotStore(path) as store:
            assert store.applied_generation() == 0
            store.set_applied_generation(7)
            store.set_applied_generation(3)  # never moves backwards
            assert store.applied_generation() == 7
            with pytest.raises(ValueError):
                store.set_applied_generation(-1)
            generation = store.generation()
        with SnapshotStore(path) as reopened:
            assert reopened.applied_generation() == 7
            # Bookkeeping is not a data write: caches keyed on the store
            # generation stay valid.
            assert reopened.generation() == generation

    def test_append_with_pinned_id(self, tmp_path, leader):
        engine, _ = leader
        with SnapshotStore(tmp_path / "pinned.db") as store:
            first = store.append_snapshot(engine.snapshots[0], snapshot_id=41)
            assert first == 41
            # Re-offering the same window at the same id is idempotent.
            assert store.append_snapshot(engine.snapshots[0], snapshot_id=41) == 41
            assert len(store) == 1
            # A different window claiming a taken id is divergence.
            with pytest.raises(StoreError, match="diverged"):
                store.append_snapshot(engine.snapshots[1], snapshot_id=41)
            # Auto-assigned ids continue past the pinned one.
            assert store.append_snapshot(engine.snapshots[1]) == 42


# ---------------------------------------------------------------------------------------
# Leader endpoint
# ---------------------------------------------------------------------------------------
class TestReplicationEndpoint:
    def test_full_changelog_from_zero(self, leader_served):
        engine, store, _, client = leader_served
        page = client.replication_changes(since=0, limit=256)
        assert page["since"] == 0
        assert page["generation"] == store.generation()
        assert page["horizon"] == 0
        assert page["more"] is False
        assert len(page["changes"]) == len(engine.snapshots)
        generations = [entry["generation"] for entry in page["changes"]]
        assert generations == sorted(generations)
        for entry, snapshot in zip(page["changes"], engine.snapshots):
            assert entry["kind"] == "window"
            assert entry["payload"] == snapshot_payload(snapshot)

    def test_paging_and_since(self, leader_served):
        engine, _, _, client = leader_served
        page = client.replication_changes(since=0, limit=3)
        assert page["more"] is True
        assert len(page["changes"]) == 3
        tail = client.replication_changes(since=page["changes"][-1]["generation"], limit=256)
        assert tail["more"] is False
        assert len(page["changes"]) + len(tail["changes"]) == len(engine.snapshots)

    def test_caught_up_page_is_empty(self, leader_served):
        _, store, _, client = leader_served
        page = client.replication_changes(since=store.generation())
        assert page["changes"] == []
        assert page["more"] is False

    def test_bad_arguments_are_400(self, leader_served):
        _, _, _, client = leader_served
        for target in (
            "/v1/replication/changes?since=-1",
            "/v1/replication/changes?since=abc",
            "/v1/replication/changes?since=0&limit=0",
            "/v1/replication/changes?limit=x",
        ):
            with pytest.raises(ServiceError) as excinfo:
                client.get(target)
            assert excinfo.value.status == 400

    def test_changelog_pages_stay_out_of_the_cache(self, leader):
        """Pages are huge one-shot bodies keyed by ever-advancing `since`
        values: caching them would evict the hot per-AS entries."""
        from repro.service import ClassificationService

        _, store = leader
        service = ClassificationService(store)
        first = service.handle("/v1/replication/changes?since=0&limit=2")
        assert first.status == 200
        second = service.handle("/v1/replication/changes?since=0&limit=2")
        assert (second.status, second.body) == (200, first.body)  # still deterministic
        assert service.stats.cache_hits == 0
        assert len(service.cache) == 0


# ---------------------------------------------------------------------------------------
# Payload round trip
# ---------------------------------------------------------------------------------------
class TestPayloadRoundTrip:
    def test_snapshot_from_payload_inverts_snapshot_payload(self, leader):
        import json

        engine, _ = leader
        for snapshot in engine.snapshots:
            # Through a JSON round trip, like the wire does it.
            wire = json.loads(json.dumps(snapshot_payload(snapshot)))
            rebuilt = snapshot_from_payload(wire, snapshot.result.thresholds)
            assert snapshot_payload(rebuilt) == snapshot_payload(snapshot)
            assert rebuilt.changed == snapshot.changed
            assert rebuilt.result.thresholds == snapshot.result.thresholds


# ---------------------------------------------------------------------------------------
# Follower syncer
# ---------------------------------------------------------------------------------------
class TestReplicaSyncer:
    def test_follower_converges_byte_identically(self, tmp_path, leader_served):
        engine, store, server, client = leader_served
        with SnapshotStore(tmp_path / "follower.db") as follower:
            report = ReplicaSyncer(client, follower, page_size=5).sync_once()
            assert report.caught_up
            assert report.applied == len(engine.snapshots)
            assert report.pages >= 2  # page_size 5 over 8 windows: really paged
            assert follower.applied_generation() == store.generation()
            # Same ids, same windows, same payloads -- and the served bytes
            # are identical on every deterministic endpoint.
            assert [m.snapshot_id for m in follower.snapshots()] == [
                m.snapshot_id for m in store.snapshots()
            ]
            with ClassificationServer(follower) as fserver:
                fserver.start()
                with ServiceClient(fserver.url) as fclient:
                    for target in identity_targets(engine):
                        assert fclient.get(target) == client.get(target), target

    def test_second_sync_is_a_noop(self, tmp_path, leader_served):
        _, _, _, client = leader_served
        with SnapshotStore(tmp_path / "follower.db") as follower:
            syncer = ReplicaSyncer(client, follower)
            syncer.sync_once()
            again = syncer.sync_once()
            assert again.applied == 0 and again.deduplicated == 0
            assert again.caught_up

    def test_follower_tracks_ongoing_leader_writes(self, tmp_path, leader_served):
        engine, store, _, client = leader_served
        with SnapshotStore(tmp_path / "follower.db") as follower:
            syncer = ReplicaSyncer(client, follower)
            syncer.sync_once()
            drained = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
            attach_store(drained, store)
            drained.run(MemorySource(feed(8, start=3200)))
            report = syncer.sync_once()
            assert report.applied == len(drained.snapshots)
            assert follower.applied_generation() == store.generation()
            assert len(follower) == len(store)

    def test_killed_follower_resumes_exactly_once(self, tmp_path, leader_served):
        """The acceptance invariant: a kill mid-sync appends no duplicates."""
        engine, store, server, _ = leader_served

        class DyingClient(ServiceClient):
            """Dies (like a SIGKILL would) after serving two pages."""

            pages = 0

            def replication_changes(self, **kwargs):
                if DyingClient.pages >= 2:
                    raise ServiceError(503, "follower process killed")
                DyingClient.pages += 1
                return super().replication_changes(**kwargs)

        path = tmp_path / "follower.db"
        with SnapshotStore(path) as follower:
            with DyingClient(server.url) as dying:
                with pytest.raises(ServiceError):
                    ReplicaSyncer(dying, follower, page_size=3).sync_once()
            applied_before_kill = follower.applied_generation()
            assert 0 < len(follower) < len(store)
            assert applied_before_kill == follower.snapshots()[-1].generation

        # "Restart": a fresh process opens the same store and resumes from
        # the durably recorded generation.
        with SnapshotStore(path) as restarted:
            assert restarted.applied_generation() == applied_before_kill
            with ServiceClient(server.url) as client:
                report = ReplicaSyncer(client, restarted, page_size=3).sync_once()
            assert report.caught_up
            keys = Counter(
                (meta.kind, meta.window_start, meta.window_end)
                for meta in restarted.snapshots()
            )
            assert all(count == 1 for count in keys.values()), keys
            assert [
                (meta.snapshot_id, meta.kind, meta.window_start, meta.window_end)
                for meta in restarted.snapshots()
            ] == [
                (meta.snapshot_id, meta.kind, meta.window_start, meta.window_end)
                for meta in store.snapshots()
            ]

    def test_empty_follower_bootstraps_from_pruned_leader(self, tmp_path):
        with SnapshotStore(tmp_path / "leader.db", retention=3) as leader_store:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
            attach_store(engine, leader_store)
            engine.run(MemorySource(feed(32)))
            assert leader_store.pruned_through() > 0
            with ClassificationServer(leader_store) as server:
                server.start()
                with SnapshotStore(tmp_path / "follower.db") as follower:
                    with ServiceClient(server.url) as client:
                        report = ReplicaSyncer(client, follower).sync_once()
                    # The pruned prefix is gone everywhere; adopting the
                    # retained set as the seed *is* convergence.
                    assert report.caught_up
                    assert [m.snapshot_id for m in follower.snapshots()] == [
                        m.snapshot_id for m in leader_store.snapshots()
                    ]

    def test_retention_overtaking_a_lagging_follower_is_an_error(self, tmp_path):
        with SnapshotStore(tmp_path / "leader.db", retention=3) as leader_store:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
            attach_store(engine, leader_store)
            engine.run(MemorySource(feed(8)))
            with ClassificationServer(leader_store) as server:
                server.start()
                with SnapshotStore(tmp_path / "follower.db") as follower:
                    with ServiceClient(server.url) as client:
                        syncer = ReplicaSyncer(client, follower)
                        syncer.sync_once()
                        # The leader races far ahead; retention prunes
                        # windows the follower never fetched.
                        more = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
                        attach_store(more, leader_store)
                        more.run(MemorySource(feed(32, start=800)))
                        assert leader_store.pruned_through() > follower.applied_generation()
                        with pytest.raises(ReplicationError, match="re-seed"):
                            syncer.sync_once()

    def test_compaction_generation_bump_fast_forwards(self, tmp_path, leader_served):
        _, store, _, client = leader_served
        with SnapshotStore(tmp_path / "follower.db") as follower:
            syncer = ReplicaSyncer(client, follower)
            syncer.sync_once()
            # A generation bump without new snapshots (compaction) must not
            # strand the follower behind forever, nor be a false gap.
            store.retention = len(store) - 2
            assert store.compact() == 2
            report = syncer.sync_once()
            assert report.caught_up
            assert follower.applied_generation() == store.generation()

    def test_run_survives_transient_leader_failures(self, tmp_path, leader):
        import threading

        engine, store = leader
        with SnapshotStore(tmp_path / "follower.db") as follower:
            syncer = ReplicaSyncer("http://127.0.0.1:9", follower)
            stop = threading.Event()
            reports = []

            def stop_after_first(report):
                reports.append(report)
                stop.set()

            # Leader down: run records the failure and keeps going...
            worker = threading.Thread(
                target=syncer.run,
                kwargs={"poll_interval": 0.05, "stop": stop, "on_sync": stop_after_first},
                daemon=True,
            )
            worker.start()
            deadline = threading.Event()
            for _ in range(100):
                if syncer.last_error is not None:
                    break
                deadline.wait(0.05)
            assert syncer.last_error is not None
            # ...and converges once a leader appears on a reachable URL.
            with ClassificationServer(store) as server:
                server.start()
                syncer.client = ServiceClient(server.url)
                worker.join(timeout=30)
                assert not worker.is_alive()
            assert reports and reports[0].applied == len(engine.snapshots)
            assert syncer.last_error is None

    def test_rejects_bad_page_size(self, tmp_path):
        with SnapshotStore(tmp_path / "follower.db") as follower:
            with pytest.raises(ValueError):
                ReplicaSyncer("http://127.0.0.1:9", follower, page_size=0)

    def test_diverged_local_store_is_a_replication_error(self, tmp_path, leader_served):
        """A follower store holding locally-produced snapshots whose ids
        collide with the leader's surfaces as ReplicationError, not a raw
        StoreError traceback out of the sync loop."""
        engine, _, _, client = leader_served
        with SnapshotStore(tmp_path / "diverged.db") as diverged:
            local = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
            local.run(MemorySource(feed(4, start=100_000)))
            for snapshot in local.snapshots:  # ids 1..N, different windows
                diverged.append_snapshot(snapshot)
            with pytest.raises(ReplicationError, match="diverged"):
                ReplicaSyncer(client, diverged).sync_once()


# ---------------------------------------------------------------------------------------
# Schema migration (v1 -> v2)
# ---------------------------------------------------------------------------------------
def _open_store_process(path, results):
    """Child-process entry: open (and possibly migrate) one store path.

    Module-level so the spawn start method can import it.
    """
    try:
        with SnapshotStore(path) as store:
            results.put(("ok", len(store)))
    except Exception as error:  # noqa: BLE001 - reported to the parent
        results.put(("error", repr(error)))

#: The version-1 DDL, verbatim, to fabricate a pre-generation store file.
_V1_SCHEMA = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE snapshots (
    id              INTEGER PRIMARY KEY AUTOINCREMENT,
    kind            TEXT NOT NULL,
    window_start    INTEGER NOT NULL,
    window_end      INTEGER NOT NULL,
    skipped_windows INTEGER NOT NULL,
    events_total    INTEGER NOT NULL,
    unique_tuples   INTEGER NOT NULL,
    algorithm       TEXT NOT NULL,
    thresholds      TEXT NOT NULL
);
CREATE INDEX idx_snapshots_window_end ON snapshots (window_end);
CREATE TABLE as_records (
    snapshot_id INTEGER NOT NULL, asn INTEGER NOT NULL, code TEXT NOT NULL,
    tagger INTEGER NOT NULL, silent INTEGER NOT NULL,
    forward INTEGER NOT NULL, cleaner INTEGER NOT NULL,
    PRIMARY KEY (snapshot_id, asn)
) WITHOUT ROWID;
CREATE TABLE changes (
    snapshot_id INTEGER NOT NULL, asn INTEGER NOT NULL,
    old_code TEXT NOT NULL, new_code TEXT NOT NULL,
    PRIMARY KEY (snapshot_id, asn)
) WITHOUT ROWID;
INSERT INTO meta (key, value) VALUES ('schema_version', '1');
INSERT INTO meta (key, value) VALUES ('generation', '5');
"""


class TestSchemaMigration:
    def _fabricate_v1(self, path):
        connection = sqlite3.connect(path)
        with connection:
            connection.executescript(_V1_SCHEMA)
            for index in range(3):
                connection.execute(
                    "INSERT INTO snapshots (kind, window_start, window_end,"
                    " skipped_windows, events_total, unique_tuples, algorithm,"
                    " thresholds) VALUES ('window', ?, ?, 0, 4, 2, 'column',"
                    " '[0.99, 0.99, 0.99, 0.99]')",
                    (index * 100, (index + 1) * 100),
                )
                connection.execute(
                    "INSERT INTO as_records VALUES (?, 10, 'ty', 4, 0, 0, 0)",
                    (index + 1,),
                )
        connection.close()

    def test_v1_store_migrates_in_place(self, tmp_path):
        path = tmp_path / "legacy.db"
        self._fabricate_v1(path)
        with SnapshotStore(path) as migrated:
            assert len(migrated) == 3
            # Backfilled generations keep commit order and end at the
            # stored counter, so new appends continue the sequence.
            assert [m.generation for m in migrated.snapshots()] == [3, 4, 5]
            assert migrated.generation() == 5
            assert migrated.pruned_through() == 0
            assert migrated.snapshots_since(4)[0].snapshot_id == 3
            loaded = migrated.load_snapshot(1)
            assert loaded.result.counters_of(10).tagger == 4
        # The migration is durable: a reopen does not re-run it.
        with SnapshotStore(path) as reopened:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
            engine.run(MemorySource(feed(2)))
            reopened.append_snapshot(engine.snapshots[-1])
            assert reopened.snapshots()[-1].generation == 6

    def test_concurrent_opens_race_the_migration_safely(self, tmp_path):
        """Several processes opening a v1 store at once (a fan-out worker
        fleet) must serialise the migration, not all run the ALTER."""
        import multiprocessing

        path = tmp_path / "contended.db"
        self._fabricate_v1(path)
        ctx = multiprocessing.get_context("spawn")
        results = ctx.Queue()
        processes = [
            ctx.Process(target=_open_store_process, args=(str(path), results))
            for _ in range(4)
        ]
        for process in processes:
            process.start()
        outcomes = [results.get(timeout=60) for _ in processes]
        for process in processes:
            process.join(timeout=10)
        assert outcomes == [("ok", 3)] * 4, outcomes


# ---------------------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------------------
class TestCliReplicate:
    def test_replicate_once(self, tmp_path, leader_served, capsys):
        from repro.cli import main

        engine, store, server, _ = leader_served
        replica_path = tmp_path / "replica.db"
        assert (
            main(["replicate", "--from", server.url, "--store", str(replica_path), "--once"])
            == 0
        )
        err = capsys.readouterr().err
        assert f"applied {len(engine.snapshots)} snapshots" in err
        with SnapshotStore(replica_path) as replica:
            assert len(replica) == len(store)
            assert replica.applied_generation() == store.generation()

    def test_replicate_unreachable_leader_fails(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "replicate",
                "--from",
                "http://127.0.0.1:9",
                "--store",
                str(tmp_path / "replica.db"),
                "--once",
            ]
        )
        assert rc == 1
        assert "leader unreachable" in capsys.readouterr().err

    def test_replicate_rejects_bad_workers(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "replicate",
                "--from",
                "http://127.0.0.1:9",
                "--store",
                str(tmp_path / "replica.db"),
                "--http-workers",
                "0",
            ]
        )
        assert rc == 2
