"""Tests for per-AS reports and the run summary (repro.eval.report)."""

import pytest

from repro.bgp.announcement import PathCommTuple
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.core.attribution import CommunityAttribution
from repro.core.column import ColumnInference
from repro.eval.report import ASReport, build_as_report, summarize_run
from repro.topology.cone import CustomerCones
from repro.topology.relationships import ASRelationships


@pytest.fixture()
def pipeline_outputs():
    tuples = [
        PathCommTuple(ASPath([10]), CommunitySet.from_strings(["10:1"])),
        PathCommTuple(ASPath([30]), CommunitySet.from_strings(["30:7"])),
        PathCommTuple(ASPath([10, 30]), CommunitySet.from_strings(["10:1", "30:7"])),
        PathCommTuple(ASPath([20, 30]), CommunitySet.from_strings(["30:7"])),
        PathCommTuple(ASPath([20]), CommunitySet.empty()),
    ]
    result = ColumnInference().run(tuples)
    relationships = ASRelationships()
    relationships.add_p2c(10, 30)
    relationships.add_p2c(20, 30)
    cones = CustomerCones(relationships, [10, 20, 30])
    attribution = CommunityAttribution(result).ingest(tuples)
    return result, cones, attribution


class TestASReport:
    def test_build_report_combines_everything(self, pipeline_outputs):
        result, cones, attribution = pipeline_outputs
        report = build_as_report(10, result, cones=cones, attribution=attribution)
        assert report.classification.code == "tf"
        assert report.cone_size == 2
        assert report.counters.tagger >= 1
        assert any(str(c) == "10:1" for c in report.attributed_communities)
        assert not report.is_32bit

    def test_report_without_optional_parts(self, pipeline_outputs):
        result, _, _ = pipeline_outputs
        report = build_as_report(20, result)
        assert report.cone_size is None
        assert report.attributed_communities == ()

    def test_to_text_mentions_key_facts(self, pipeline_outputs):
        result, cones, attribution = pipeline_outputs
        text = build_as_report(10, result, cones=cones, attribution=attribution).to_text()
        assert "AS10" in text
        assert "classification : tf" in text
        assert "customer cone" in text
        assert "10:1" in text

    def test_32bit_flag(self, pipeline_outputs):
        result, _, _ = pipeline_outputs
        report = ASReport(asn=200000, classification=result.classification_of(10), counters=result.counters_of(10))
        assert report.is_32bit
        assert "32-bit" in report.to_text()


class TestRunSummary:
    def test_summary_contains_counts(self, pipeline_outputs):
        result, cones, _ = pipeline_outputs
        text = summarize_run(result, cones=cones, title="Test run")
        assert text.startswith("# Test run")
        assert f"**{len(result.observed_ases)}**" in text
        assert "| tf |" in text
        assert "median customer cone" in text

    def test_summary_without_cones(self, pipeline_outputs):
        result, _, _ = pipeline_outputs
        text = summarize_run(result)
        assert "median customer cone" not in text
        assert "| tagging | ASes | forwarding | ASes |" in text
