"""Tests for classification results, attribution, and the end-to-end pipeline."""

import pytest

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASNRegistry
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.bgp.prefix import PrefixAllocation, parse_prefix
from repro.core.attribution import CommunityAttribution
from repro.core.classes import ForwardingClass, TaggingClass
from repro.core.column import ColumnInference
from repro.core.pipeline import InferencePipeline
from repro.sanitize.filters import SanitationConfig


def tuples_from(*items):
    return [
        PathCommTuple(ASPath(asns), CommunitySet.from_strings(comms)) for asns, comms in items
    ]


@pytest.fixture()
def simple_result():
    return ColumnInference().run(
        tuples_from(
            ([10], ["10:1"]),
            ([20], []),
            ([30], ["30:1"]),
            ([10, 30], ["10:5", "30:1"]),
            ([20, 30], ["30:1"]),
        )
    )


class TestClassificationResult:
    def test_summary_counts_are_consistent(self, simple_result):
        summary = simple_result.summary()
        assert summary["ases_observed"] == 3  # ASes 10, 20, 30
        tagging_total = (
            summary["tagger"] + summary["silent"] + summary["tagging_undecided"] + summary["tagging_none"]
        )
        assert tagging_total == summary["ases_observed"]

    def test_unobserved_as_is_nn(self, simple_result):
        assert simple_result.classification_of(999).code == "nn"
        assert simple_result[999].is_empty

    def test_fully_classified(self, simple_result):
        fully = simple_result.fully_classified_ases()
        for classification in fully.values():
            assert classification.is_full

    def test_ases_with_class_queries(self, simple_result):
        taggers = simple_result.ases_with_tagging(TaggingClass.TAGGER)
        assert 10 in taggers
        assert simple_result.ases_with_forwarding(ForwardingClass.FORWARD)

    def test_code_counter_matches_observed(self, simple_result):
        counter = simple_result.code_counter()
        assert sum(counter.values()) == len(simple_result)

    def test_counters_accessible(self, simple_result):
        assert simple_result.counters_of(10).tagger >= 1
        assert simple_result.counters_of(999).as_tuple() == (0, 0, 0, 0)


class TestCommunityAttribution:
    def test_attributes_values_to_visible_taggers(self):
        items = tuples_from(
            ([10], ["10:1", "10:2"]),
            ([20, 10], ["10:1"]),
        )
        result = ColumnInference().run(items)
        attribution = CommunityAttribution(result).ingest(items)
        values = attribution.communities_of(10)
        assert {str(c) for c in values} == {"10:1", "10:2"}
        assert attribution.distinct_values(10) == 2
        assert 10 in attribution.attributed_ases()

    def test_non_taggers_get_nothing(self):
        items = tuples_from(([10], []), ([20], ["10:1"]))
        result = ColumnInference().run(items)
        attribution = CommunityAttribution(result).ingest(items)
        # 10 is classified silent (it never tags at its own session).
        assert attribution.communities_of(10) == {}

    def test_blocked_by_non_forward_upstream(self):
        items = tuples_from(
            ([30], ["30:1"]),
            ([20, 30], []),           # 20 becomes a cleaner
            ([20, 30], ["30:9"]),     # inconsistent single tag through a cleaner
        )
        result = ColumnInference().run(items)
        attribution = CommunityAttribution(result).ingest(items)
        attributed = attribution.communities_of(30)
        # Only the directly observed peer tag is attributed, not the one seen
        # through the (inferred) cleaner.
        assert {str(c) for c in attributed} == {"30:1"}

    def test_top_values_ordering(self):
        items = tuples_from(
            ([10], ["10:1"]),
            ([10], ["10:1"]),
            ([10], ["10:1", "10:2"]),
        )
        result = ColumnInference().run(items)
        attribution = CommunityAttribution(result).ingest(items)
        top = attribution.top_values(10, count=1)
        assert str(top[0]) == "10:1"


class TestInferencePipeline:
    def _observations(self):
        registryable = [10, 20, 30]
        observations = [
            RouteObservation(
                collector="c0",
                peer_asn=30,
                prefix=parse_prefix("8.4.4.0/24"),
                path=ASPath([30]),
                communities=CommunitySet.from_strings(["30:1"]),
            ),
            RouteObservation(
                collector="c0",
                peer_asn=10,
                prefix=parse_prefix("8.8.8.0/24"),
                path=ASPath([10, 10, 30]),
                communities=CommunitySet.from_strings(["30:1", "10:2"]),
            ),
            RouteObservation(
                collector="c0",
                peer_asn=20,
                prefix=parse_prefix("8.8.4.0/24"),
                path=ASPath([20, 30]),
                communities=CommunitySet.from_strings(["30:1"]),
            ),
            # Duplicate of the first (after prepending collapse) -> deduplicated.
            RouteObservation(
                collector="c1",
                peer_asn=10,
                prefix=parse_prefix("8.8.8.0/24"),
                path=ASPath([10, 30]),
                communities=CommunitySet.from_strings(["30:1", "10:2"]),
            ),
            # Unallocated prefix -> dropped.
            RouteObservation(
                collector="c1",
                peer_asn=10,
                prefix=parse_prefix("10.1.0.0/16"),
                path=ASPath([10, 30]),
                communities=CommunitySet.empty(),
            ),
        ]
        return registryable, observations

    def test_end_to_end_from_observations(self):
        asns, observations = self._observations()
        pipeline = InferencePipeline(
            asn_registry=ASNRegistry.from_asns(asns),
            prefix_allocation=PrefixAllocation.default_internet(),
        )
        outcome = pipeline.run_from_observations(observations)
        assert outcome.observations_in == 5
        assert outcome.sanitation.dropped_unallocated_prefix == 1
        assert outcome.unique_tuples == 3
        assert outcome.result.classification_of(10).tagging is TaggingClass.TAGGER
        assert outcome.result.classification_of(30).tagging is TaggingClass.TAGGER
        assert "unique_tuples" in outcome.summary()

    def test_run_from_tuples_skips_sanitation(self):
        pipeline = InferencePipeline()
        outcome = pipeline.run_from_tuples(tuples_from(([10], ["10:1"])))
        assert outcome.unique_tuples == 1
        assert outcome.result.classification_of(10).tagging is TaggingClass.TAGGER

    def test_row_algorithm_selectable(self):
        pipeline = InferencePipeline(algorithm="row")
        outcome = pipeline.run_from_tuples(tuples_from(([10, 20], ["20:1"])))
        assert outcome.result.algorithm == "row"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            InferencePipeline(algorithm="magic")

    def test_custom_sanitation_config(self):
        _, observations = self._observations()
        pipeline = InferencePipeline(sanitation=SanitationConfig(drop_unallocated_prefixes=False))
        outcome = pipeline.run_from_observations(observations)
        assert outcome.sanitation.dropped_unallocated_prefix == 0
