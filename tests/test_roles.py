"""Unit tests for usage roles (repro.usage.roles)."""

import pytest

from repro.topology.relationships import Relationship
from repro.usage.roles import (
    ForwardingRole,
    ROLE_CODES,
    RoleAssignment,
    SelectivePolicy,
    TaggingRole,
    UsageRole,
)


class TestRoleCodes:
    def test_from_code(self):
        role = UsageRole.from_code("tf")
        assert role.is_tagger and role.is_forward
        assert role.code == "tf"

    def test_all_four_codes(self):
        for code in ROLE_CODES:
            assert UsageRole.from_code(code).code == code

    def test_invalid_codes_rejected(self):
        for code in ("xx", "t", "tfc", "ft"):
            with pytest.raises(ValueError):
                UsageRole.from_code(code)

    def test_role_predicates_are_exclusive(self):
        role = UsageRole.from_code("sc")
        assert role.is_silent and not role.is_tagger
        assert role.is_cleaner and not role.is_forward

    def test_single_char_codes(self):
        assert TaggingRole.TAGGER.code == "t"
        assert TaggingRole.SILENT.code == "s"
        assert ForwardingRole.FORWARD.code == "f"
        assert ForwardingRole.CLEANER.code == "c"


class TestSelectivePolicy:
    def test_everywhere_always_tags(self):
        for rel in (None, Relationship.PROVIDER, Relationship.PEER, Relationship.CUSTOMER):
            assert SelectivePolicy.EVERYWHERE.allows(rel)

    def test_not_to_providers(self):
        policy = SelectivePolicy.NOT_TO_PROVIDERS
        assert not policy.allows(Relationship.PROVIDER)
        assert policy.allows(Relationship.PEER)
        assert policy.allows(Relationship.CUSTOMER)
        assert policy.allows(None)  # collectors always tagged

    def test_only_to_customers(self):
        policy = SelectivePolicy.ONLY_TO_CUSTOMERS
        assert policy.allows(Relationship.CUSTOMER)
        assert not policy.allows(Relationship.PEER)
        assert not policy.allows(Relationship.PROVIDER)
        assert policy.allows(None)

    def test_only_to_collectors(self):
        policy = SelectivePolicy.ONLY_TO_COLLECTORS
        assert policy.allows(None)
        assert not policy.allows(Relationship.CUSTOMER)

    def test_is_selective_flag(self):
        assert not SelectivePolicy.EVERYWHERE.is_selective
        assert SelectivePolicy.NOT_TO_PROVIDERS.is_selective

    def test_selective_tagger_detection(self):
        selective = UsageRole(TaggingRole.TAGGER, ForwardingRole.FORWARD, SelectivePolicy.ONLY_TO_CUSTOMERS)
        silent = UsageRole(TaggingRole.SILENT, ForwardingRole.FORWARD, SelectivePolicy.ONLY_TO_CUSTOMERS)
        assert selective.is_selective_tagger
        assert not silent.is_selective_tagger  # silent ASes cannot tag selectively


class TestRoleAssignment:
    def test_uniform(self):
        assignment = RoleAssignment.uniform([1, 2, 3], UsageRole.from_code("tc"))
        assert len(assignment) == 3
        assert assignment[2].code == "tc"

    def test_random_uniform_covers_all_codes(self):
        assignment = RoleAssignment.random_uniform(range(1000), seed=1)
        counts = assignment.count_by_code()
        for code in ROLE_CODES:
            assert counts[code] > 150  # roughly uniform

    def test_random_uniform_deterministic(self):
        a = RoleAssignment.random_uniform(range(100), seed=5)
        b = RoleAssignment.random_uniform(range(100), seed=5)
        assert {asn: role.code for asn, role in a.items()} == {asn: role.code for asn, role in b.items()}

    def test_with_selective_taggers_share(self):
        assignment = RoleAssignment.random_uniform(range(2000), seed=2)
        modified = assignment.with_selective_taggers(SelectivePolicy.NOT_TO_PROVIDERS, share=0.5, seed=2)
        taggers = len(assignment.taggers())
        selective = len(modified.selective_taggers())
        assert abs(selective - taggers * 0.5) <= 1
        # Original assignment untouched.
        assert not assignment.selective_taggers()

    def test_queries(self):
        assignment = RoleAssignment(
            {1: UsageRole.from_code("tf"), 2: UsageRole.from_code("sc"), 3: UsageRole.from_code("tc")}
        )
        assert assignment.taggers() == [1, 3]
        assert assignment.silent() == [2]
        assert assignment.forwarders() == [1]
        assert assignment.cleaners() == [2, 3]

    def test_mapping_protocol(self):
        assignment = RoleAssignment()
        assignment[5] = UsageRole.from_code("tf")
        assert 5 in assignment
        assert assignment.get(6) is None
        assert list(iter(assignment)) == [5]
