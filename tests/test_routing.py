"""Unit tests for valley-free routing (repro.topology.routing)."""

import pytest

from repro.topology.relationships import ASRelationships, Relationship
from repro.topology.routing import RoutingEngine


def is_valley_free(path, relationships):
    """Check the Gao-Rexford shape of a peer->origin path.

    Read from the collector peer towards the origin the path must consist of
    up-hops, at most one peer-hop, then down-hops (see routing module notes).
    """
    phase = "up"
    for a, b in zip(path.asns, path.asns[1:]):
        rel = relationships.relationship(a, b)
        if rel is Relationship.NONE:
            return False
        if phase == "up":
            if rel is Relationship.PROVIDER:
                continue
            if rel is Relationship.PEER:
                phase = "down"
            elif rel is Relationship.CUSTOMER:
                phase = "down"
        else:
            if rel is not Relationship.CUSTOMER:
                return False
    return True


class TestSmallHandcraftedTopology:
    @pytest.fixture()
    def diamond(self):
        """Provider 1 with customers 2 and 3; 4 is a customer of both."""
        rel = ASRelationships()
        rel.add_p2c(1, 2)
        rel.add_p2c(1, 3)
        rel.add_p2c(2, 4)
        rel.add_p2c(3, 4)
        rel.add_p2p(2, 3)

        class FakeTopology:
            relationships = rel
            ases = {asn: None for asn in (1, 2, 3, 4)}

        return FakeTopology()

    def test_customer_route_preferred(self, diamond):
        paths = RoutingEngine(diamond).best_paths_from_peer(2)
        assert paths[4].path.asns == (2, 4)
        assert paths[4].preference_rank == 0

    def test_peer_route_used_when_no_customer_route(self, diamond):
        paths = RoutingEngine(diamond).best_paths_from_peer(2)
        # 3 is reachable via the peer link directly, not via provider 1.
        assert paths[3].path.asns == (2, 3)
        assert paths[3].preference_rank == 1

    def test_provider_route_as_last_resort(self, diamond):
        paths = RoutingEngine(diamond).best_paths_from_peer(4)
        # 4 reaches 1 only through one of its providers.
        assert paths[1].path.asns in ((4, 2, 1), (4, 3, 1))
        assert paths[1].preference_rank == 2

    def test_every_as_reaches_itself(self, diamond):
        paths = RoutingEngine(diamond).best_paths_from_peer(1)
        assert paths[1].path.asns == (1,)

    def test_no_valley_paths(self, diamond):
        # From peer 4, AS 3 must not be reached via 2 (peer of a provider's
        # customer would be a valley); it is reached via its provider link.
        paths = RoutingEngine(diamond).best_paths_from_peer(4)
        assert paths[3].path.asns == (4, 3)


class TestGeneratedTopologyRouting:
    def test_full_reachability_from_core_peer(self, topology, paths_by_peer, collector_peers):
        # A tier-1 or large-transit peer should reach essentially every AS.
        sizes = {peer: len(per) for peer, per in paths_by_peer.items()}
        assert max(sizes.values()) >= len(topology) * 0.95

    def test_paths_start_at_peer_and_end_at_origin(self, paths_by_peer):
        for peer, per_origin in paths_by_peer.items():
            for origin, route in per_origin.items():
                assert route.path.peer == peer
                assert route.path.origin == origin

    def test_paths_have_no_loops(self, paths_by_peer):
        for per_origin in paths_by_peer.values():
            for route in per_origin.values():
                assert not route.path.has_loop
                assert not route.path.has_prepending

    def test_all_paths_are_valley_free(self, topology, paths_by_peer):
        for per_origin in paths_by_peer.values():
            for route in per_origin.values():
                if len(route.path) > 1:
                    assert is_valley_free(route.path, topology.relationships), route.path

    def test_path_lengths_are_realistic(self, paths_by_peer):
        lengths = [len(r.path) for per in paths_by_peer.values() for r in per.values() if len(r.path) > 1]
        mean = sum(lengths) / len(lengths)
        assert 2.5 < mean < 7.0
        assert max(lengths) < 15

    def test_preference_rank_matches_first_hop(self, topology, paths_by_peer):
        rel = topology.relationships
        for peer, per_origin in paths_by_peer.items():
            for route in per_origin.values():
                if len(route.path) < 2:
                    continue
                first_hop = rel.relationship(peer, route.path.asns[1])
                expected = {Relationship.CUSTOMER: 0, Relationship.PEER: 1, Relationship.PROVIDER: 2}[first_hop]
                assert route.preference_rank == expected

    def test_paths_to_origin_helper(self, topology, collector_peers):
        engine = RoutingEngine(topology)
        origin = topology.leaf_asns()[0]
        routes = engine.paths_to_origin(collector_peers[:3], origin)
        assert routes
        for route in routes:
            assert route.origin == origin
