"""Tests for the row-based baseline and its comparison with the column algorithm."""

import pytest

from repro.bgp.announcement import PathCommTuple
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.core.classes import ForwardingClass, TaggingClass
from repro.core.column import ColumnInference
from repro.core.row import RowInference


def tuples_from(*items):
    return [
        PathCommTuple(ASPath(asns), CommunitySet.from_strings(comms)) for asns, comms in items
    ]


class TestRowBaseline:
    def test_counts_tagging_for_every_position(self):
        result = RowInference().run(tuples_from(([10, 20], ["10:1", "20:2"])))
        assert result.classification_of(10).tagging is TaggingClass.TAGGER
        assert result.classification_of(20).tagging is TaggingClass.TAGGER

    def test_counts_forward_when_downstream_tag_visible(self):
        result = RowInference().run(tuples_from(([10, 20], ["20:1"])))
        assert result.classification_of(10).forwarding is ForwardingClass.FORWARD

    def test_counts_cleaner_when_downstream_tag_missing(self):
        result = RowInference().run(tuples_from(([10, 20], [])))
        assert result.classification_of(10).forwarding is ForwardingClass.CLEANER

    def test_algorithm_label(self):
        assert RowInference().run([]).algorithm == "row"

    def test_misclassifies_hidden_ases_unlike_column(self):
        # A silent AS hidden behind an unknown potential cleaner: the row
        # baseline marks it silent (and the upstream AS cleaner) from a single
        # ambiguous observation; the column algorithm refuses to judge.
        items = tuples_from(([10, 30], []))
        row = RowInference().run(items)
        column = ColumnInference().run(items)
        assert row.classification_of(30).tagging is TaggingClass.SILENT
        assert column.classification_of(30).tagging is TaggingClass.NONE
        assert row.classification_of(10).forwarding is ForwardingClass.CLEANER
        assert column.classification_of(10).forwarding is ForwardingClass.NONE


class TestRowVsColumnOnGroundTruth:
    def _tagging_precision(self, dataset, result):
        correct = wrong = 0
        for asn in result.observed_ases:
            role = dataset.roles.get(asn)
            tagging = result.classification_of(asn).tagging
            if tagging is TaggingClass.TAGGER:
                correct, wrong = (correct + 1, wrong) if role.is_tagger else (correct, wrong + 1)
            elif tagging is TaggingClass.SILENT:
                correct, wrong = (correct + 1, wrong) if role.is_silent else (correct, wrong + 1)
        return correct / (correct + wrong) if correct + wrong else 1.0

    def test_column_precision_dominates_row(self, random_dataset):
        column = ColumnInference().run(random_dataset.tuples)
        row = RowInference().run(random_dataset.tuples)
        column_precision = self._tagging_precision(random_dataset, column)
        row_precision = self._tagging_precision(random_dataset, row)
        assert column_precision == pytest.approx(1.0)
        assert row_precision < column_precision

    def test_row_claims_more_ases_but_with_errors(self, random_dataset):
        column = ColumnInference().run(random_dataset.tuples)
        row = RowInference().run(random_dataset.tuples)
        column_decided = column.summary()["tagger"] + column.summary()["silent"]
        row_decided = row.summary()["tagger"] + row.summary()["silent"]
        # The baseline decides for (almost) everything it sees...
        assert row_decided > column_decided
        # ...including hidden ASes, which the paper's algorithm refuses to judge.
        hidden = random_dataset.visibility.tagging_hidden
        row_hidden_decided = sum(
            1
            for asn in hidden
            if row.classification_of(asn).tagging in (TaggingClass.TAGGER, TaggingClass.SILENT)
        )
        assert row_hidden_decided > 0
