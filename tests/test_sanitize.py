"""Unit tests for the sanitation pipeline (repro.sanitize.filters)."""

import pytest

from repro.bgp.announcement import RouteObservation
from repro.bgp.asn import ASNRegistry
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.bgp.prefix import PrefixAllocation, parse_prefix
from repro.sanitize.filters import (
    SanitationConfig,
    Sanitizer,
    observations_from_rib_entries,
    observations_from_updates,
)
from repro.bgp.messages import BGPUpdate, PathAttributes, RIBEntry


def make_observation(path, peer=None, prefix="8.8.8.0/24", comms=()):
    path = ASPath(path) if not isinstance(path, ASPath) else path
    return RouteObservation(
        collector="rrc00",
        peer_asn=peer if peer is not None else path.peer,
        prefix=parse_prefix(prefix),
        path=path,
        communities=CommunitySet.from_strings(comms),
    )


@pytest.fixture()
def registry():
    return ASNRegistry.from_asns([10, 20, 30, 40, 200000])


@pytest.fixture()
def sanitizer(registry):
    return Sanitizer(asn_registry=registry, prefix_allocation=PrefixAllocation.default_internet())


class TestPathSanitation:
    def test_clean_path_passes_unchanged(self, sanitizer):
        path = ASPath([10, 20, 30])
        assert sanitizer.sanitize_path(path, 10) is path

    def test_as_set_dropped(self, sanitizer):
        path = ASPath.from_string("10 20 {30,40}")
        assert sanitizer.sanitize_path(path, 10) is None
        assert sanitizer.stats.dropped_as_set == 1

    def test_prepending_collapsed(self, sanitizer):
        result = sanitizer.sanitize_path(ASPath([10, 20, 20, 30]), 10)
        assert result.asns == (10, 20, 30)
        assert sanitizer.stats.prepending_collapsed == 1

    def test_peer_prepended_for_route_servers(self, sanitizer):
        # The MRT peer AS (an IXP route server scenario) differs from A_1.
        result = sanitizer.sanitize_path(ASPath([20, 30]), peer_asn=10)
        assert result.asns == (10, 20, 30)
        assert sanitizer.stats.peer_prepended == 1

    def test_loop_dropped(self, sanitizer):
        assert sanitizer.sanitize_path(ASPath([10, 20, 10]), 10) is None
        assert sanitizer.stats.dropped_loop == 1

    def test_unallocated_asn_dropped(self, sanitizer):
        assert sanitizer.sanitize_path(ASPath([10, 99]), 10) is None
        assert sanitizer.stats.dropped_unallocated_asn == 1

    def test_private_asn_dropped_even_without_registry(self):
        sanitizer = Sanitizer()
        assert sanitizer.sanitize_path(ASPath([10, 64512]), 10) is None

    def test_max_length_filter(self, registry):
        config = SanitationConfig(max_path_length=2)
        sanitizer = Sanitizer(asn_registry=registry, config=config)
        assert sanitizer.sanitize_path(ASPath([10, 20, 30]), 10) is None
        assert sanitizer.stats.dropped_too_long == 1

    def test_steps_can_be_disabled(self, registry):
        config = SanitationConfig(drop_as_sets=False, collapse_prepending=False)
        sanitizer = Sanitizer(asn_registry=registry, config=config)
        prepended = sanitizer.sanitize_path(ASPath([10, 10, 20]), 10)
        assert prepended.asns == (10, 10, 20)


class TestObservationSanitation:
    def test_unallocated_prefix_dropped(self, sanitizer):
        observation = make_observation([10, 20], prefix="10.1.2.0/24")
        assert sanitizer.sanitize_observation(observation) is None
        assert sanitizer.stats.dropped_unallocated_prefix == 1

    def test_clean_observation_returned_as_is(self, sanitizer):
        observation = make_observation([10, 20])
        assert sanitizer.sanitize_observation(observation) is observation

    def test_rewritten_observation_keeps_metadata(self, sanitizer):
        observation = make_observation([10, 10, 20], comms=["10:1"])
        result = sanitizer.sanitize_observation(observation)
        assert result.path.asns == (10, 20)
        assert result.collector == observation.collector
        assert result.communities == observation.communities

    def test_stats_track_in_and_out(self, sanitizer):
        observations = [
            make_observation([10, 20]),
            make_observation([10, 99]),
            make_observation([10, 20, 30]),
        ]
        clean = list(sanitizer.sanitize_observations(observations))
        assert len(clean) == 2
        assert sanitizer.stats.observations_in == 3
        assert sanitizer.stats.observations_out == 2
        assert sanitizer.stats.dropped_total == 1

    def test_to_unique_tuples_deduplicates(self, sanitizer):
        observations = [make_observation([10, 20]), make_observation([10, 20])]
        tuples = sanitizer.to_unique_tuples(observations)
        assert len(tuples) == 1

    def test_stats_as_dict_keys(self, sanitizer):
        data = sanitizer.stats.as_dict()
        assert "observations_in" in data
        assert "dropped_as_set" in data


class TestObservationConversion:
    def test_from_rib_entries(self):
        attributes = PathAttributes(as_path=ASPath([10, 20]))
        entry = RIBEntry(peer_asn=10, prefix=parse_prefix("8.8.8.0/24"), attributes=attributes)
        (observation,) = list(observations_from_rib_entries("rrc00", [entry]))
        assert observation.from_rib
        assert observation.peer_asn == 10

    def test_from_updates_skips_withdrawals(self):
        attributes = PathAttributes(as_path=ASPath([10, 20]))
        announce = BGPUpdate(
            peer_asn=10,
            timestamp=0,
            announced=(parse_prefix("8.8.8.0/24"), parse_prefix("9.9.9.0/24")),
            attributes=attributes,
        )
        withdraw = BGPUpdate(peer_asn=10, timestamp=0, withdrawn=(parse_prefix("8.8.8.0/24"),))
        observations = list(observations_from_updates("rrc00", [announce, withdraw]))
        assert len(observations) == 2
        assert all(not o.from_rib for o in observations)
