"""Unit tests for scenario construction and visibility analysis."""

import pytest

from repro.bgp.path import ASPath
from repro.usage.roles import RoleAssignment, UsageRole
from repro.usage.scenarios import (
    ScenarioBuilder,
    ScenarioName,
    assign_realistic_roles,
    build_scenario,
)
from repro.usage.visibility import VisibilityAnalysis


def roles_from(codes):
    return RoleAssignment({asn: UsageRole.from_code(code) for asn, code in codes.items()})


class TestVisibilityAnalysis:
    def test_peers_always_tagging_visible(self):
        roles = roles_from({1: "sc", 2: "tf", 3: "tf"})
        analysis = VisibilityAnalysis.from_paths([ASPath([1, 2, 3])], roles)
        assert 1 in analysis.tagging_visible

    def test_cleaner_hides_downstream_tagging(self):
        roles = roles_from({1: "sc", 2: "tf", 3: "tf"})
        analysis = VisibilityAnalysis.from_paths([ASPath([1, 2, 3])], roles)
        assert 2 in analysis.tagging_hidden
        assert 3 in analysis.tagging_hidden

    def test_forward_chain_keeps_everything_visible(self):
        roles = roles_from({1: "tf", 2: "tf", 3: "tf"})
        analysis = VisibilityAnalysis.from_paths([ASPath([1, 2, 3])], roles)
        assert analysis.tagging_hidden == set()

    def test_forwarding_needs_downstream_tagger(self):
        roles = roles_from({1: "sf", 2: "sf", 3: "sf"})
        analysis = VisibilityAnalysis.from_paths([ASPath([1, 2, 3])], roles)
        assert analysis.forwarding_visible == set()

    def test_forwarding_visible_with_downstream_tagger(self):
        roles = roles_from({1: "sf", 2: "sf", 3: "tf"})
        analysis = VisibilityAnalysis.from_paths([ASPath([1, 2, 3])], roles)
        assert {1, 2} <= analysis.forwarding_visible

    def test_leaf_detection(self):
        roles = roles_from({1: "tf", 2: "tf", 3: "tf"})
        analysis = VisibilityAnalysis.from_paths([ASPath([1, 2, 3]), ASPath([1, 2])], roles)
        assert 3 in analysis.leaf_ases
        assert 2 not in analysis.leaf_ases
        # Leaf ASes never have observable forwarding behaviour.
        assert 3 not in analysis.forwarding_visible

    def test_visibility_across_multiple_paths(self):
        # Hidden on one path, visible on another.
        roles = roles_from({1: "sc", 2: "tf", 3: "tf", 4: "tf"})
        analysis = VisibilityAnalysis.from_paths(
            [ASPath([1, 3, 4]), ASPath([2, 3, 4])], roles
        )
        assert 3 in analysis.tagging_visible
        assert 4 in analysis.tagging_visible

    def test_collector_peers_recorded(self):
        roles = roles_from({1: "tf", 2: "tf", 3: "tf"})
        analysis = VisibilityAnalysis.from_paths([ASPath([1, 3]), ASPath([2, 3])], roles)
        assert analysis.collector_peers == {1, 2}


class TestScenarioBuilder:
    def test_requires_paths(self):
        with pytest.raises(ValueError):
            ScenarioBuilder([])

    def test_alltf_outputs_all_uppers(self, scenario_builder):
        dataset = scenario_builder.build(ScenarioName.ALLTF, seed=1)
        item = max(dataset.tuples, key=lambda t: len(t.path))
        assert all(item.communities.has_upper(asn) for asn in item.path)

    def test_alltc_outputs_only_peer(self, scenario_builder):
        dataset = scenario_builder.build(ScenarioName.ALLTC, seed=1)
        for item in dataset.tuples[:500]:
            assert item.communities.upper_fields() == {item.peer}

    def test_random_assigns_all_roles(self, random_dataset):
        counts = random_dataset.role_counts()
        assert set(counts) == {"tf", "tc", "sf", "sc"}
        total = sum(counts.values())
        for count in counts.values():
            assert count > total * 0.15

    def test_random_scenarios_differ_by_seed(self, scenario_builder):
        a = scenario_builder.build(ScenarioName.RANDOM, seed=1)
        b = scenario_builder.build(ScenarioName.RANDOM, seed=2)
        codes_a = {asn: a.roles[asn].code for asn in list(a.all_ases)[:200]}
        codes_b = {asn: b.roles[asn].code for asn in codes_a}
        assert codes_a != codes_b

    def test_selective_scenarios_mark_half_of_taggers(self, scenario_builder):
        dataset = scenario_builder.build(ScenarioName.RANDOM_P, seed=1)
        taggers = len(dataset.roles.taggers())
        selective = len(dataset.roles.selective_taggers())
        assert abs(selective - taggers / 2) <= 1

    def test_noise_scenario_has_noise_config(self, scenario_builder):
        dataset = scenario_builder.build(ScenarioName.RANDOM_NOISE, seed=1)
        assert dataset.noise is not None and dataset.noise.enabled

    def test_build_scenario_convenience(self, path_substrate, topology):
        dataset = build_scenario(path_substrate[:500], ScenarioName.ALLTC, seed=3)
        assert dataset.name == "alltc"
        assert len(dataset.tuples) == 500

    def test_dataset_accessors(self, random_dataset):
        assert random_dataset.collector_peers
        assert random_dataset.leaf_ases
        assert len(random_dataset.paths()) == len(random_dataset.tuples)


class TestRealisticRoles:
    def test_taggers_concentrate_in_the_core(self, topology):
        from repro.topology.generator import ASTier

        roles = assign_realistic_roles(topology, seed=4)
        tier1 = topology.by_tier(ASTier.TIER1)
        stubs = topology.by_tier(ASTier.STUB)
        tier1_share = sum(1 for a in tier1 if roles[a].is_tagger) / len(tier1)
        stub_share = sum(1 for a in stubs if roles[a].is_tagger) / len(stubs)
        assert tier1_share > stub_share

    def test_every_as_gets_a_role(self, topology):
        roles = assign_realistic_roles(topology, seed=4)
        assert len(roles) == len(topology)

    def test_deterministic(self, topology):
        a = assign_realistic_roles(topology, seed=4)
        b = assign_realistic_roles(topology, seed=4)
        assert {asn: a[asn].code for asn in a} == {asn: b[asn].code for asn in b}
