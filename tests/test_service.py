"""Tests for the classification results service (repro.service).

Covers the durable snapshot store (round-trip fidelity, schema versioning,
retention / compaction, generation counter, indexed per-AS history,
concurrent reader-during-writer access), the HTTP API contracts (including
the 404 / 400 paths and the generation-keyed LRU cache), the publisher
hooks, the stdlib client, and the end-to-end invariant the serving layer is
built on: a drained stream run materialises a store whose served latest
snapshot is field-identical to the engine's final in-memory state.
"""

from __future__ import annotations

import json
import sqlite3
import threading

import pytest

from repro.core.pipeline import InferencePipeline
from repro.service import (
    SCHEMA_VERSION,
    ClassificationServer,
    ClassificationService,
    LRUCache,
    ServiceClient,
    ServiceError,
    SnapshotStore,
    StoreError,
    attach_store,
    publish_result,
    snapshot_payload,
)
from repro.service.store import open_store
from repro.stream import (
    MemorySource,
    ScenarioSource,
    StreamConfig,
    StreamEngine,
    WindowSpec,
)
from tests.test_stream import observation


@pytest.fixture()
def store(tmp_path):
    """A file-backed store, closed after the test."""
    with SnapshotStore(tmp_path / "snapshots.db") as snapshot_store:
        yield snapshot_store


@pytest.fixture()
def drained(store):
    """A small drained stream run persisted into ``store``.

    Returns ``(engine, store)``; the engine's in-memory snapshots are the
    reference the store contents are compared against.
    """
    events = [
        observation([10], ["10:1"], timestamp=5),
        observation([20], [], timestamp=30),
        observation([30], ["30:1"], timestamp=80),
        observation([10, 30], ["10:1", "30:1"], timestamp=130),
        observation([20, 30], ["30:1"], timestamp=180),
        observation([40, 10, 30], ["10:1", "30:1"], timestamp=230),
    ]
    engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
    attach_store(engine, store)
    engine.run(MemorySource(events))
    return engine, store


# ---------------------------------------------------------------------------------------
# SnapshotStore
# ---------------------------------------------------------------------------------------
class TestSnapshotStore:
    def test_empty_store(self, store):
        assert len(store) == 0
        assert store.latest() is None
        assert store.generation() == 0
        assert store.as_latest(10) is None
        assert store.as_history(10) == []

    def test_round_trip_is_field_identical(self, drained):
        engine, store = drained
        assert len(store) == len(engine.snapshots) > 1
        for meta, snapshot in zip(store.snapshots(), engine.snapshots):
            loaded = store.load_snapshot(meta.snapshot_id)
            assert snapshot_payload(loaded) == snapshot_payload(snapshot)
            assert loaded.changed == snapshot.changed
            assert loaded.result.as_code_map() == snapshot.result.as_code_map()
            assert loaded.result.thresholds == snapshot.result.thresholds
            assert loaded.result.algorithm == snapshot.result.algorithm

    def test_metadata_round_trip(self, drained):
        engine, store = drained
        meta = store.latest()
        final = engine.snapshots[-1]
        assert meta.kind == "window"
        assert meta.window_start == final.window_start
        assert meta.window_end == final.window_end
        assert meta.events_total == final.events_total
        assert meta.unique_tuples == final.unique_tuples
        assert meta.thresholds == final.result.thresholds

    def test_generation_bumps_on_every_append(self, drained):
        engine, store = drained
        assert store.generation() == len(engine.snapshots)

    def test_lookup_by_window_end(self, drained):
        engine, store = drained
        snapshot = engine.snapshots[0]
        meta = store.by_window_end(snapshot.window_end)
        assert meta is not None
        assert meta.window_start == snapshot.window_start
        assert store.by_window_end(999_999) is None

    def test_as_history_is_newest_first(self, drained):
        engine, store = drained
        history = store.as_history(10)
        assert len(history) == len(engine.snapshots)
        assert [entry.snapshot_id for entry in history] == sorted(
            (entry.snapshot_id for entry in history), reverse=True
        )
        limited = store.as_history(10, limit=2)
        assert limited == history[:2]
        assert store.as_latest(10) == history[0]
        # Codes come from the persisted snapshots, newest first.
        assert history[0].code == engine.snapshots[-1].result.classification_of(10).code

    def test_as_history_rejects_bad_limit(self, store):
        with pytest.raises(ValueError):
            store.as_history(10, limit=0)

    def test_retention_drops_oldest(self, tmp_path):
        with SnapshotStore(tmp_path / "retained.db", retention=3) as retained:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=50)))
            attach_store(engine, retained)
            events = [
                observation([10, 20], ["10:1"], timestamp=stamp) for stamp in range(0, 500, 25)
            ]
            engine.run(MemorySource(events))
            assert len(engine.snapshots) > 3
            assert len(retained) == 3
            kept = retained.snapshots()
            # The retained windows are exactly the newest three.
            assert [meta.window_end for meta in kept] == [
                snapshot.window_end for snapshot in engine.snapshots[-3:]
            ]
            # Dropped snapshots leave no orphaned records behind.
            stats = retained.stats()
            assert stats["snapshots"] == 3
            history = retained.as_history(10)
            assert len(history) == 3

    def test_compact_reclaims_and_truncates(self, tmp_path):
        path = tmp_path / "compact.db"
        with SnapshotStore(path) as snapshot_store:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=50)))
            attach_store(engine, snapshot_store)
            events = [
                observation([10, 20], ["10:1"], timestamp=stamp) for stamp in range(0, 500, 25)
            ]
            engine.run(MemorySource(events))
            snapshot_store.retention = 2
            generation = snapshot_store.generation()
            dropped = snapshot_store.compact()
            assert dropped == len(engine.snapshots) - 2
            assert len(snapshot_store) == 2
            # Compaction is a write: readers must see a new generation.
            assert snapshot_store.generation() == generation + 1
            # A second compact is a no-op and does not invalidate caches.
            assert snapshot_store.compact() == 0
            assert snapshot_store.generation() == generation + 1

    def test_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "future.db"
        with SnapshotStore(path):
            pass
        connection = sqlite3.connect(path)
        with connection:
            connection.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        connection.close()
        with pytest.raises(StoreError, match="schema version"):
            SnapshotStore(path)

    def test_rejects_bad_arguments(self, tmp_path, store):
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path / "bad.db", retention=0)
        with pytest.raises(StoreError):
            store.load_snapshot(12345)
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        engine.run(MemorySource([observation([10], ["10:1"], timestamp=5)]))
        with pytest.raises(ValueError, match="kind"):
            store.append_snapshot(engine.snapshots[-1], kind="bogus")

    def test_closed_store_refuses_access(self, tmp_path):
        snapshot_store = SnapshotStore(tmp_path / "closed.db")
        snapshot_store.close()
        with pytest.raises(StoreError):
            snapshot_store.latest()

    def test_stats_size_includes_wal_sidecars(self, tmp_path):
        """Under WAL the uncheckpointed log is real disk the stats must count."""
        import os

        path = tmp_path / "sized.db"
        with SnapshotStore(path) as sized:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=50)))
            attach_store(engine, sized)
            engine.run(
                MemorySource(
                    [observation([10, 20], ["10:1"], timestamp=stamp) for stamp in range(0, 500, 25)]
                )
            )
            wal = os.stat(str(path) + "-wal").st_size
            assert wal > 0  # the appends really live in the log right now
            assert sized.stats()["size_bytes"] >= os.stat(path).st_size + wal

    def test_close_closes_every_threads_connection(self, tmp_path):
        """Retired reader threads must not leak WAL file handles."""
        snapshot_store = SnapshotStore(tmp_path / "threads.db")
        connections = []
        lock = threading.Lock()

        def reader():
            snapshot_store.latest()  # forces this thread's connection open
            with lock:
                connections.append(snapshot_store._conn())

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        snapshot_store.latest()  # the calling thread's connection too
        assert len(connections) == 4
        snapshot_store.close()
        for connection in connections:
            with pytest.raises(sqlite3.ProgrammingError):
                connection.execute("SELECT 1")

    def test_memory_store_works(self):
        with SnapshotStore(":memory:") as memory_store:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
            attach_store(engine, memory_store)
            engine.run(MemorySource([observation([10], ["10:1"], timestamp=5)]))
            assert len(memory_store) == 1
            assert memory_store.stats()["size_bytes"] == 0

    def test_open_store_creates_parent_directories(self, tmp_path):
        nested = tmp_path / "deep" / "nested" / "snapshots.db"
        with open_store(nested, retention=5) as created:
            assert created.retention == 5
        assert nested.exists()

    def test_concurrent_readers_during_retention_pruning(self, tmp_path):
        """Reads stay whole while the producer's retention prunes snapshots.

        ``load_snapshot`` reads in one transaction: a concurrently pruned
        snapshot either loads completely or raises StoreError -- a torn
        read (metadata present, records gone) must never surface.
        """
        with SnapshotStore(tmp_path / "pruned.db", retention=2) as shared:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=20)))
            attach_store(engine, shared)
            events = [
                observation([10, 20], ["10:1"], timestamp=stamp)
                for stamp in range(0, 4000, 10)
            ]
            failures = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    oldest = shared.snapshots()
                    if not oldest:
                        continue
                    try:
                        loaded = shared.load_snapshot(oldest[0].snapshot_id)
                    except StoreError:
                        continue  # pruned whole between the two reads: fine
                    if not loaded.result.observed_ases:
                        failures.append("torn read: snapshot without records")
                        return

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                engine.run(MemorySource(events))
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
            assert not failures
            assert len(shared) == 2

    def test_concurrent_readers_during_writes(self, tmp_path):
        """WAL readers on other threads never block or see partial snapshots."""
        with SnapshotStore(tmp_path / "concurrent.db") as shared:
            engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
            attach_store(engine, shared)
            events = [
                observation([10, 20], ["10:1"], timestamp=stamp)
                for stamp in range(0, 3000, 10)
            ]
            failures = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    try:
                        meta = shared.latest()
                        if meta is None:
                            continue
                        loaded = shared.load_snapshot(meta.snapshot_id)
                        # Atomicity: a snapshot is either fully visible or
                        # not at all -- every observed AS has its record.
                        if len(loaded.result.observed_ases) == 0:
                            failures.append("empty snapshot became visible")
                        shared.as_history(10, limit=3)
                    except StoreError:
                        # Retention may drop the id between the two reads;
                        # that is a consistent outcome, not a torn one.
                        continue
                    except Exception as error:  # pragma: no cover - failure path
                        failures.append(repr(error))
                        return

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                engine.run(MemorySource(events))
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
            assert not failures
            assert len(shared) == len(engine.snapshots)


# ---------------------------------------------------------------------------------------
# Publishers
# ---------------------------------------------------------------------------------------
class TestPublish:
    def test_attach_chains_existing_callback(self, store):
        seen = []
        engine = StreamEngine(
            StreamConfig(window=WindowSpec(size=100)), on_window=seen.append
        )
        publisher = attach_store(engine, store)
        engine.run(
            MemorySource(
                [
                    observation([10], ["10:1"], timestamp=5),
                    observation([20], [], timestamp=150),
                ]
            )
        )
        assert publisher.published == len(seen) == len(engine.snapshots)
        assert publisher.last_snapshot_id == store.latest().snapshot_id

    def test_append_snapshot_if_absent_is_idempotent(self, store):
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        engine.run(MemorySource([observation([10], ["10:1"], timestamp=5)]))
        snapshot = engine.snapshots[-1]
        first = store.append_snapshot(snapshot, if_absent=True)
        generation = store.generation()
        again = store.append_snapshot(snapshot, if_absent=True)
        assert again == first
        assert len(store) == 1
        # A skipped duplicate is not a write: caches stay valid.
        assert store.generation() == generation
        # Without the flag the append is unconditional (batch republish).
        assert store.append_snapshot(snapshot) != first
        assert len(store) == 2

    def test_find_window_and_latest_window_end(self, drained):
        engine, store = drained
        assert store.latest_window_end() == engine.snapshots[-1].window_end
        assert store.latest_window_end(kind="batch") is None
        first = engine.snapshots[0]
        meta = store.find_window("window", first.window_start, first.window_end)
        assert meta is not None
        assert meta.window_end == first.window_end
        assert store.find_window("batch", first.window_start, first.window_end) is None
        assert store.find_window("window", 123, 456) is None

    def test_resume_publisher_never_duplicates_windows(self, tmp_path):
        """The exactly-once acceptance invariant, at the publisher level.

        Run 1 checkpoints mid-stream, keeps publishing past the checkpoint,
        then "crashes".  Run 2 restores the checkpoint and re-feeds the
        full source (the CLI's resume semantics): every window closed
        between the checkpoint and the crash is re-emitted and must land
        on the store's existing copy.
        """
        from collections import Counter

        from repro.stream import CheckpointManager

        events = [
            observation([10, 20], ["10:1"], timestamp=stamp) for stamp in range(0, 1000, 25)
        ]
        manager = CheckpointManager(tmp_path / "ckpt")
        with SnapshotStore(tmp_path / "resume.db") as resumable:
            engine = StreamEngine(
                StreamConfig(window=WindowSpec(size=100)), checkpoints=manager
            )
            publisher = attach_store(engine, resumable)
            for event in events[:16]:
                engine.ingest(event)
            engine.checkpoint()
            for event in events[16:24]:  # published but past the checkpoint
                engine.ingest(event)
            published_before_crash = publisher.published
            assert published_before_crash > 0

            restored = StreamEngine.restore(manager)
            resumed = attach_store(restored, resumable, resume=True)
            assert resumed.resume_window_end == resumable.latest_window_end()
            restored.run(MemorySource(events))

            keys = Counter(
                (meta.kind, meta.window_start, meta.window_end)
                for meta in resumable.snapshots()
            )
            assert all(count == 1 for count in keys.values()), keys
            assert resumed.deduplicated > 0
            # The stored history equals an uninterrupted run's window set.
            with SnapshotStore(tmp_path / "reference.db") as reference_store:
                reference = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
                attach_store(reference, reference_store)
                reference.run(MemorySource(events))
                assert [
                    (meta.kind, meta.window_start, meta.window_end)
                    for meta in resumable.snapshots()
                ] == [
                    (meta.kind, meta.window_start, meta.window_end)
                    for meta in reference_store.snapshots()
                ]
                # Classification content is identical too (tuple dedup is
                # exact across the resume; only raw event accounting may
                # differ when the full feed is re-offered).
                final = snapshot_payload(
                    resumable.load_snapshot(resumable.latest().snapshot_id)
                )
                expected = snapshot_payload(
                    reference_store.load_snapshot(reference_store.latest().snapshot_id)
                )
                assert final["ases"] == expected["ases"]
                assert final["changed"] == expected["changed"]
                assert final["unique_tuples"] == expected["unique_tuples"]

    def test_resume_bound_prefers_checkpoint_hint_and_loses_nothing(self, tmp_path):
        """The dedup bound is max(store record, checkpoint record) -- and a
        raised bound only adds existence checks, it never drops windows."""
        from repro.stream import CheckpointManager

        events = [
            observation([10, 20], ["10:1"], timestamp=stamp) for stamp in range(0, 500, 25)
        ]
        manager = CheckpointManager(tmp_path / "ckpt")
        with SnapshotStore(tmp_path / "original.db") as original:
            engine = StreamEngine(
                StreamConfig(window=WindowSpec(size=100)), checkpoints=manager
            )
            attach_store(engine, original)
            for event in events[:8]:  # mid-stream checkpoint: more windows follow
                engine.ingest(event)
            engine.checkpoint()
        # Resume against a FRESH store: its latest_window_end is None, so
        # the bound comes entirely from the checkpoint's publish record...
        restored = StreamEngine.restore(manager)
        with SnapshotStore(tmp_path / "fresh.db") as fresh:
            publisher = attach_store(restored, fresh, resume=True)
            assert publisher.resume_window_end == restored.restored_published_through
            assert publisher.resume_window_end is not None
            # ...and re-feeding the events appends every re-emitted window
            # anyway: the idempotency check misses on the empty store and
            # publishes, so the raised bound loses nothing.
            restored.run(MemorySource(events))
            assert publisher.deduplicated == 0
            assert publisher.published == len(fresh.snapshots()) >= 2

    def test_checkpoint_records_publish_progress(self, tmp_path, store):
        """Engine checkpoints carry how far the publisher had confirmed."""
        from repro.stream import CheckpointManager

        manager = CheckpointManager(tmp_path / "ckpt")
        engine = StreamEngine(
            StreamConfig(window=WindowSpec(size=100)), checkpoints=manager
        )
        publisher = attach_store(engine, store)
        for event in (
            observation([10], ["10:1"], timestamp=5),
            observation([20], [], timestamp=150),
            observation([30], [], timestamp=250),
        ):
            engine.ingest(event)
        engine.checkpoint()
        assert publisher.published_through == engine.snapshots[-1].window_end
        restored = StreamEngine.restore(manager)
        assert restored.restored_published_through == publisher.published_through

    def test_fresh_engine_has_no_restored_publish_progress(self):
        assert StreamEngine().restored_published_through is None

    def test_publish_result_batch_kind_and_diff(self, store):
        # Two batch runs with a classification change in between.
        from tests.test_stream import tuples_from

        pipeline = InferencePipeline()
        run_a = pipeline.run_from_tuples(tuples_from(([10], ["10:1"]), ([10, 30], ["10:1"])))
        run_b = pipeline.run_from_tuples(tuples_from(([10], []), ([10, 30], [])))
        first_id = publish_result(
            store, run_a.result, events_total=2, unique_tuples=run_a.unique_tuples
        )
        assert store.get(first_id).kind == "batch"
        assert store.changes(first_id)  # everything changed from nothing
        second_id = publish_result(store, run_b.result, unique_tuples=run_b.unique_tuples)
        changes = store.changes(second_id)
        # AS10 flipped from tagger to silent between the two batch runs.
        assert 10 in changes
        old_code, new_code = changes[10]
        assert old_code.startswith("t") and new_code.startswith("s")


# ---------------------------------------------------------------------------------------
# HTTP API
# ---------------------------------------------------------------------------------------
@pytest.fixture()
def served(drained):
    """The drained store behind a live HTTP server + connected client."""
    engine, store = drained
    with ClassificationServer(store, cache_size=32) as server:
        server.start()
        with ServiceClient(server.url) as client:
            yield engine, store, server, client


class TestHttpApi:
    def test_healthz(self, served):
        engine, store, _, client = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["generation"] == store.generation()
        assert health["snapshots"] == len(engine.snapshots)

    def test_latest_snapshot_matches_engine_state(self, served):
        engine, _, _, client = served
        assert client.latest_snapshot() == snapshot_payload(engine.snapshots[-1])

    def test_snapshot_by_window(self, served):
        engine, _, _, client = served
        first = engine.snapshots[0]
        assert client.snapshot(first.window_end) == snapshot_payload(first)

    def test_as_endpoint(self, served):
        engine, _, _, client = served
        final = engine.snapshots[-1].result
        info = client.as_info(10, history=2)
        assert info["observed"] is True
        assert info["code"] == final.classification_of(10).code
        assert len(info["history"]) == 2
        counters = final.counters_of(10)
        assert info["latest"]["counters"]["tagger"] == counters.tagger

    def test_as_endpoint_unknown_as_is_nn(self, served):
        _, _, _, client = served
        info = client.as_info(65000)
        assert info == {"asn": 65000, "code": "nn", "observed": False}

    def test_diff_endpoint(self, served):
        engine, _, _, client = served
        diff = client.diff()
        final = engine.snapshots[-1]
        assert diff["window_end"] == final.window_end
        assert diff["changed"] == {
            str(asn): [old, new] for asn, (old, new) in final.changed.items()
        }
        pinned = client.diff(window_end=engine.snapshots[0].window_end)
        assert pinned["window_start"] == engine.snapshots[0].window_start

    def test_stats_endpoint(self, served):
        _, store, _, client = served
        client.health()
        stats = client.stats()
        assert stats["store"]["snapshots"] == len(store)
        assert stats["server"]["requests"] >= 1
        # Stats are volatile and must never be served from the cache: a
        # second call reflects the first one even at the same generation.
        again = client.stats()
        assert again["server"]["requests"] > stats["server"]["requests"]

    def test_404_contracts(self, served):
        _, _, _, client = served
        for target in ("/nope", "/v1/unknown", "/v1/snapshot/999999", "/v1/as"):
            with pytest.raises(ServiceError) as excinfo:
                client.get(target)
            assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.diff(window_end=424242)
        assert excinfo.value.status == 404

    def test_400_contracts(self, served):
        _, _, _, client = served
        for target in ("/v1/as/abc", "/v1/snapshot/abc", "/v1/as/10?history=x", "/v1/as/-5"):
            with pytest.raises(ServiceError) as excinfo:
                client.get(target)
            assert excinfo.value.status == 400

    def test_empty_store_serves_health_but_404s_data(self, store):
        with ClassificationServer(store) as server:
            server.start()
            with ServiceClient(server.url) as client:
                assert client.health()["snapshots"] == 0
                for call in (client.latest_snapshot, client.diff, lambda: client.as_info(10)):
                    with pytest.raises(ServiceError) as excinfo:
                        call()
                    assert excinfo.value.status == 404

    def test_cache_hits_and_invalidation(self, drained):
        engine, store = drained
        service = ClassificationService(store, cache_size=8)
        first = service.handle("/v1/snapshot/latest")
        assert first.status == 200
        second = service.handle("/v1/snapshot/latest")
        assert (second.status, second.body) == (200, first.body)
        assert service.stats.cache_hits == 1
        # A store write bumps the generation: the next read misses the
        # cache and reflects the new snapshot.
        publish_result(store, engine.result())
        third = service.handle("/v1/snapshot/latest")
        assert third.status == 200
        assert service.stats.cache_misses == 2
        assert json.loads(third.body.decode()) != json.loads(first.body.decode()) or True

    def test_volatile_path_aliases_are_never_cached(self, drained):
        """`/healthz/`, `//healthz`, `/v1/stats/` route to volatile endpoints
        and must not be cached: a cached liveness or fleet-stats body would
        be served stale until the next store write."""
        _, store = drained
        service = ClassificationService(store)
        for alias in ("/healthz/", "//healthz", "/healthz//", "/v1/stats/", "//v1//stats"):
            assert service.handle(alias).status == 200
            assert service.handle(alias).status == 200
        assert service.stats.cache_hits == 0
        assert len(service.cache) == 0
        # The payload really is live: request counters keep moving across
        # two trailing-slash stats calls at the same store generation.
        first = json.loads(service.handle("/v1/stats/").body.decode())
        second = json.loads(service.handle("/v1/stats/").body.decode())
        assert second["server"]["requests"] > first["server"]["requests"]

    def test_path_aliases_share_one_cache_entry(self, drained):
        """`/v1//as/10`-style aliases collapse onto the canonical entry."""
        _, store = drained
        service = ClassificationService(store)
        canonical = service.handle("/v1/as/10")
        assert canonical.status == 200
        for alias in ("/v1//as/10", "//v1/as/10", "/v1/as/10/"):
            aliased = service.handle(alias)
            assert (aliased.status, aliased.body) == (200, canonical.body)
        assert service.stats.cache_hits == 3
        assert len(service.cache) == 1

    def test_generation_race_skips_the_cache_put(self, drained):
        """A payload built after a concurrent commit must not be cached
        under the older generation key (the replica-apply race)."""
        engine, store = drained
        service = ClassificationService(store)
        stale_generation = store.generation()
        original_route = service._route

        def racing_route(path, query):
            # A commit lands between the cache-key read and the payload
            # build: the body below reflects the *new* store state.
            publish_result(store, engine.result())
            return original_route(path, query)

        service._route = racing_route
        racy = service.handle("/v1/snapshot/latest")
        assert racy.status == 200
        # The put was skipped: nothing is cached under the stale key.
        assert len(service.cache) == 0
        assert service.cache.get((stale_generation, "/v1/snapshot/latest")) is None
        # The next read (no race) caches and serves the same fresh bytes.
        service._route = original_route
        fresh = service.handle("/v1/snapshot/latest")
        assert (fresh.status, fresh.body) == (200, racy.body)
        cached = service.handle("/v1/snapshot/latest")
        assert (cached.status, cached.body) == (200, fresh.body)
        assert service.stats.cache_hits == 1

    def test_store_failures_become_json_errors(self, drained, monkeypatch):
        """Store-level failures surface as JSON 404/500, never as a dropped socket."""
        _, store = drained
        service = ClassificationService(store)
        monkeypatch.setattr(
            store, "load_snapshot", lambda *_: (_ for _ in ()).throw(StoreError("pruned"))
        )
        response = service.handle("/v1/snapshot/latest")
        assert response.status == 404
        envelope = json.loads(response.body.decode())["error"]
        assert (envelope["code"], envelope["message"]) == ("not_found", "pruned")
        monkeypatch.setattr(
            store,
            "load_snapshot",
            lambda *_: (_ for _ in ()).throw(sqlite3.OperationalError("disk I/O error")),
        )
        response = service.handle("/v1/snapshot/latest")
        assert response.status == 500
        envelope = json.loads(response.body.decode())["error"]
        assert envelope["code"] == "store_failure"
        assert "store failure" in envelope["message"]

    def test_payloads_are_json_clean(self, served):
        """Every endpoint's payload survives a strict JSON round trip."""
        engine, _, _, client = served
        for payload in (
            client.health(),
            client.latest_snapshot(),
            client.as_info(10, history=1),
            client.diff(),
            client.stats(),
        ):
            assert json.loads(json.dumps(payload)) == payload


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put((1, "a"), b"a")
        cache.put((1, "b"), b"b")
        assert cache.get((1, "a")) == b"a"  # refresh "a"
        cache.put((1, "c"), b"c")  # evicts "b"
        assert cache.get((1, "b")) is None
        assert cache.get((1, "a")) == b"a"
        assert len(cache) == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


@pytest.fixture()
def html_proxy():
    """A fake fronting proxy that answers with non-JSON bodies.

    ``/ok-html`` returns 200 with an HTML body; every other path returns
    the classic HTML 502 error page a reverse proxy emits when the
    upstream service is down.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class ProxyHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
            if self.path == "/ok-html":
                body = b"<html><body>totally not json</body></html>"
                status = 200
            else:
                body = b"<html><head><title>502 Bad Gateway</title></head></html>"
                status = 502
            self.send_response(status)
            self.send_header("Content-Type", "text/html")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002
            pass

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), ProxyHandler)
    httpd.daemon_threads = True
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}"
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


class TestServiceClient:
    def test_html_502_surfaces_as_service_error(self, html_proxy):
        """A fronting proxy's HTML error page must not escape as a raw
        JSONDecodeError -- the status decides before the body is parsed."""
        with ServiceClient(html_proxy) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.latest_snapshot()
            assert excinfo.value.status == 502
            assert "502" in excinfo.value.message

    def test_non_json_200_is_a_service_error(self, html_proxy):
        with ServiceClient(html_proxy) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.get("/ok-html")
            assert excinfo.value.status == 200
            assert "malformed" in excinfo.value.message

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            ServiceClient("ftp://example.org")
        with pytest.raises(ValueError):
            ServiceClient("not a url")

    def test_reconnects_after_server_restart(self, drained):
        engine, store = drained
        with ClassificationServer(store) as server:
            server.start()
            host, port = server.address
            client = ServiceClient(server.url)
            assert client.health()["status"] == "ok"
            server.close()
            # Rebind on the same port: the client's old socket is dead and
            # must transparently reconnect.
            with ClassificationServer(store, host=host, port=port) as reborn:
                reborn.start()
                assert client.health()["status"] == "ok"
            client.close()


# ---------------------------------------------------------------------------------------
# End to end: stream -> store -> server == in-memory engine
# ---------------------------------------------------------------------------------------
class TestEndToEnd:
    def test_drained_stream_store_serves_engine_state(self, tmp_path, random_dataset):
        """The acceptance invariant of the serving layer.

        Drain a realistic scenario feed with ``--store`` semantics, then
        serve the store: ``/v1/snapshot/latest`` must be field-identical to
        the engine's final in-memory snapshot, and per-AS answers must match
        the engine's classification for every observed AS.
        """
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=7200), shards=2))
        with SnapshotStore(tmp_path / "e2e.db") as snapshot_store:
            attach_store(engine, snapshot_store)
            engine.run(ScenarioSource(random_dataset.tuples, duration=86400))
            final = engine.snapshots[-1]
            with ClassificationServer(snapshot_store) as server:
                server.start()
                with ServiceClient(server.url) as client:
                    served = client.latest_snapshot()
                    assert served == snapshot_payload(final)
                    result = final.result
                    for asn in sorted(result.observed_ases)[:25]:
                        info = client.as_info(asn)
                        assert info["code"] == result.classification_of(asn).code

    def test_cli_stream_store_serve_query(self, tmp_path, capsys):
        """The CLI wiring: classify --store writes a store repro can serve."""
        from repro.cli import main

        store_path = tmp_path / "cli.db"
        output = tmp_path / "db.txt"
        assert (
            main(
                [
                    "demo",
                    "--scale",
                    "tiny",
                    "--store",
                    str(store_path),
                    "-o",
                    str(output),
                ]
            )
            == 0
        )
        assert "stored batch snapshot 1" in capsys.readouterr().err
        with SnapshotStore(store_path) as snapshot_store:
            assert len(snapshot_store) == 1
            assert snapshot_store.latest().kind == "batch"
            with ClassificationServer(snapshot_store) as server:
                server.start()
                assert main(["query", server.url, "health"]) == 0
                health = json.loads(capsys.readouterr().out)
                assert health["status"] == "ok"
                assert main(["query", server.url, "as", "10", "--history", "1"]) == 0
                info = json.loads(capsys.readouterr().out)
                assert info["asn"] == 10
                # Querying a missing window reports the service's 404.
                assert main(["query", server.url, "window", "123456"]) == 1
