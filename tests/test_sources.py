"""Unit tests for community source classification (repro.sanitize.sources)."""

import pytest

from repro.bgp.asn import ASNRegistry
from repro.bgp.community import CommunitySet, parse_community
from repro.bgp.path import ASPath
from repro.sanitize.sources import (
    CommunitySource,
    CommunitySourceTally,
    classify_community,
    classify_community_set,
    filter_usable,
    usable_for_inference,
)


@pytest.fixture()
def path():
    return ASPath([3356, 1299, 2914])


class TestClassifyCommunity:
    def test_peer_community(self, path):
        assert classify_community(parse_community("3356:1"), path) is CommunitySource.PEER

    def test_foreign_community(self, path):
        assert classify_community(parse_community("2914:1"), path) is CommunitySource.FOREIGN
        assert classify_community(parse_community("1299:1"), path) is CommunitySource.FOREIGN

    def test_stray_community(self, path):
        assert classify_community(parse_community("174:1"), path) is CommunitySource.STRAY

    def test_private_community(self, path):
        assert classify_community(parse_community("65500:1"), path) is CommunitySource.PRIVATE
        assert classify_community(parse_community("0:666"), path) is CommunitySource.PRIVATE

    def test_large_community_peer(self, path):
        assert classify_community(parse_community("3356:1:2"), path) is CommunitySource.PEER

    def test_unallocated_upper_is_private_with_registry(self, path):
        registry = ASNRegistry.from_asns([3356, 1299, 2914])
        community = parse_community("174:1")
        assert classify_community(community, path, registry=registry) is CommunitySource.PRIVATE

    def test_same_community_changes_group_across_paths(self):
        community = parse_community("1299:1")
        assert classify_community(community, ASPath([1299, 3356])) is CommunitySource.PEER
        assert classify_community(community, ASPath([3356, 1299])) is CommunitySource.FOREIGN
        assert classify_community(community, ASPath([3356, 2914])) is CommunitySource.STRAY


class TestClassifySet:
    def test_counts_include_all_groups(self, path):
        communities = CommunitySet.from_strings(["3356:1", "2914:2", "174:3", "65000:4"])
        counts = classify_community_set(communities, path)
        assert counts[CommunitySource.PEER] == 1
        assert counts[CommunitySource.FOREIGN] == 1
        assert counts[CommunitySource.STRAY] == 1
        assert counts[CommunitySource.PRIVATE] == 1

    def test_empty_set(self, path):
        counts = classify_community_set(CommunitySet.empty(), path)
        assert sum(counts.values()) == 0


class TestUsability:
    def test_peer_and_foreign_usable(self, path):
        assert usable_for_inference(parse_community("3356:1"), path)
        assert usable_for_inference(parse_community("1299:1"), path)

    def test_stray_and_private_not_usable(self, path):
        assert not usable_for_inference(parse_community("174:1"), path)
        assert not usable_for_inference(parse_community("65000:1"), path)

    def test_filter_usable(self, path):
        communities = CommunitySet.from_strings(["3356:1", "174:1", "65000:1"])
        assert filter_usable(communities, path).to_strings() == ["3356:1"]


class TestTally:
    def test_tally_accumulates(self, path):
        tally = CommunitySourceTally()
        tally.add(CommunitySet.from_strings(["3356:1", "174:2"]), path)
        tally.add(CommunitySet.from_strings(["3356:2"]), path)
        assert tally.count(CommunitySource.PEER) == 2
        assert tally.count(CommunitySource.STRAY) == 1
        assert tally.unique_upper_fields(CommunitySource.PEER) == 1
        assert tally.unique_upper_fields() == 2
