"""Tests for the streaming classification engine (repro.stream).

Covers the window clock, event sources, sharding determinism, incremental
classifiers (delta-vs-recount behaviour, eviction), checkpoint/restore
round-trips, and the engine-level invariants that back the live deployment
story: batch equivalence and checkpoint transparency.
"""

import pickle

import pytest

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.bgp.prefix import parse_prefix
from repro.core.column import ColumnInference
from repro.core.counters import CounterStore
from repro.core.row import RowInference
from repro.core.thresholds import Thresholds
from repro.stream import (
    CheckpointError,
    CheckpointManager,
    IncrementalColumnClassifier,
    IncrementalRowClassifier,
    MemorySource,
    MRTReplaySource,
    ScenarioSource,
    ShardRouter,
    StreamConfig,
    StreamEngine,
    WindowClock,
    WindowPolicy,
    WindowSpec,
    shard_of,
)


def observation(asns, comms=(), timestamp=0, collector="rrc00"):
    """One crafted update announcement."""
    return RouteObservation(
        collector=collector,
        peer_asn=asns[0],
        prefix=parse_prefix("8.8.8.0/24"),
        path=ASPath(asns),
        communities=CommunitySet.from_strings(comms),
        timestamp=timestamp,
    )


def tuples_from(*items):
    return [
        PathCommTuple(ASPath(asns), CommunitySet.from_strings(comms)) for asns, comms in items
    ]


def fingerprint(result):
    return (result.as_code_map(), result.store.state_dict(), set(result.observed_ases))


# ---------------------------------------------------------------------------------------
# Window clock
# ---------------------------------------------------------------------------------------
class TestWindowClock:
    def test_no_close_before_boundary(self):
        clock = WindowClock(WindowSpec(size=100))
        assert clock.advance(10) is None
        assert clock.advance(99) is None

    def test_close_on_boundary_crossing(self):
        clock = WindowClock(WindowSpec(size=100))
        clock.advance(10)
        closed = clock.advance(105)
        assert closed is not None
        assert (closed.start, closed.end) == (0, 100)
        assert closed.skipped == 0

    def test_empty_windows_are_collapsed(self):
        clock = WindowClock(WindowSpec(size=100))
        clock.advance(10)
        closed = clock.advance(950)
        assert (closed.start, closed.end) == (800, 900)
        assert closed.skipped == 8

    def test_allowed_lateness_delays_closing(self):
        clock = WindowClock(WindowSpec(size=100, allowed_lateness=50))
        clock.advance(10)
        assert clock.advance(120) is None  # watermark only at 70
        closed = clock.advance(160)  # watermark 110 -> closes [0, 100)
        assert (closed.start, closed.end) == (0, 100)

    def test_late_events_are_counted(self):
        clock = WindowClock(WindowSpec(size=100))
        clock.advance(500)
        clock.advance(100)
        assert clock.late_events == 1

    def test_close_current_finishes_open_window(self):
        clock = WindowClock(WindowSpec(size=100))
        clock.advance(250)
        closed = clock.close_current()
        assert (closed.start, closed.end) == (200, 300)

    def test_close_current_is_idempotent(self):
        """A fully drained clock must not emit spurious empty windows."""
        clock = WindowClock(WindowSpec(size=100))
        clock.advance(250)
        assert clock.close_current() is not None
        assert clock.close_current() is None
        assert clock.close_current() is None
        # New events re-open windows and draining works again.
        assert clock.advance(310) is None  # window [300, 400) is now in progress
        closed = clock.close_current()
        assert (closed.start, closed.end) == (300, 400)
        assert clock.close_current() is None

    def test_state_roundtrip(self):
        clock = WindowClock(WindowSpec(size=100, allowed_lateness=10))
        clock.advance(50)
        clock.advance(500)
        restored = WindowClock.from_state(clock.state_dict())
        assert restored.max_timestamp == clock.max_timestamp
        assert restored.advance(990).start == clock.advance(990).start

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(size=0)
        with pytest.raises(ValueError):
            WindowSpec(size=100, horizon=50)
        with pytest.raises(ValueError):
            WindowSpec(size=100, allowed_lateness=-1)


# ---------------------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------------------
class TestSources:
    def test_memory_source_push_and_drain(self):
        source = MemorySource()
        source.push(observation([10], ["10:1"], timestamp=1))
        source.extend([observation([20], timestamp=2)])
        assert len(source) == 2
        assert [o.timestamp for o in source] == [1, 2]

    def test_scenario_source_spreads_timestamps(self):
        items = tuples_from(([10], ["10:1"]), ([20, 30], []))
        source = ScenarioSource(items, start=0, duration=100, repeat=2)
        events = list(source)
        assert len(events) == len(source) == 4
        timestamps = [event.timestamp for event in events]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] == 0
        assert all(ts < 100 for ts in timestamps)

    def test_scenario_source_preserves_tuples(self):
        items = tuples_from(([10, 30], ["30:1"]))
        event = next(iter(ScenarioSource(items)))
        assert event.path is items[0].path
        assert event.communities is items[0].communities
        assert event.peer_asn == 10

    def test_mrt_replay_source_orders(self, tmp_path):
        from repro.bgp.messages import BGPUpdate, PathAttributes
        from repro.mrt.encoder import MRTEncoder

        encoder = MRTEncoder()
        for timestamp in (300, 100, 200):
            encoder.write_update(
                BGPUpdate(
                    peer_asn=10,
                    timestamp=timestamp,
                    announced=(parse_prefix("8.8.8.0/24"),),
                    attributes=PathAttributes(
                        as_path=ASPath([10]), communities=CommunitySet.empty()
                    ),
                )
            )
        blob = encoder.getvalue()
        archive_order = [o.timestamp for o in MRTReplaySource({"rrc00": blob})]
        time_order = [o.timestamp for o in MRTReplaySource({"rrc00": blob}, order="time")]
        assert archive_order == [300, 100, 200]
        assert time_order == [100, 200, 300]

        path = tmp_path / "rrc00.mrt"
        path.write_bytes(blob)
        from_files = MRTReplaySource.from_files([path])
        assert [o.timestamp for o in from_files] == archive_order

    def test_mrt_replay_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            MRTReplaySource({}, order="random")


# ---------------------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------------------
class TestSharding:
    def test_shard_of_is_deterministic_and_in_range(self):
        for asn in (1, 10, 65000, 4_000_000_000):
            first = shard_of(asn, 8)
            assert 0 <= first < 8
            assert shard_of(asn, 8) == first

    def test_same_peer_lands_on_same_shard(self):
        router = ShardRouter(4)
        a = router.process(observation([10, 30], ["30:1"], timestamp=1))
        b = router.process(observation([10, 40], [], timestamp=2))
        assert a is not None and b is not None
        worker = router.workers[shard_of(10, 4)]
        assert worker.unique_tuples == 2

    def test_duplicate_detection_across_events(self):
        router = ShardRouter(4)
        key1, new1 = router.process(observation([10, 30], ["30:1"], timestamp=1))
        key2, new2 = router.process(observation([10, 30], ["30:1"], timestamp=2))
        assert new1 is not None
        assert new2 is None  # duplicate
        assert key1 == key2
        assert router.unique_tuples == 1

    def test_sanitation_stats_merge_across_shards(self):
        router = ShardRouter(4)
        router.process(observation([10], [], timestamp=1))
        assert router.process(observation([64512], [], timestamp=2)) is None  # private ASN
        stats = router.sanitation_stats()
        assert stats.observations_in == 2
        assert stats.observations_out == 1
        assert stats.dropped_unallocated_asn == 1


# ---------------------------------------------------------------------------------------
# Incremental classifiers
# ---------------------------------------------------------------------------------------
class TestIncrementalColumn:
    ITEMS = [
        ([30], ["30:1"]),
        ([10, 30], ["30:1"]),
        ([20, 30], []),
        ([20, 40], []),
    ]

    def test_matches_batch_when_fed_incrementally(self):
        batch = ColumnInference().run(tuples_from(*self.ITEMS))
        classifier = IncrementalColumnClassifier()
        for item in tuples_from(*self.ITEMS):
            classifier.add_tuple(item)
            classifier.update()  # update after every single tuple
        assert fingerprint(classifier.result()) == fingerprint(batch)

    def test_unchanged_knowledge_takes_delta_path(self):
        classifier = IncrementalColumnClassifier()
        classifier.add_tuples(tuples_from(*self.ITEMS))
        classifier.update()
        recounts_before = classifier.stats.recount_phases
        # A tuple that reinforces existing knowledge must not recount.
        classifier.add_tuples(tuples_from(([10, 30], ["30:1"])))
        classifier.update()
        assert classifier.stats.recount_phases == recounts_before
        assert classifier.stats.delta_phases > 0

    def test_changed_knowledge_triggers_recount(self):
        classifier = IncrementalColumnClassifier()
        classifier.add_tuples(tuples_from(*self.ITEMS))
        classifier.update()
        recounts_before = classifier.stats.recount_phases
        # Flip AS 50 into existence as a tagger: new knowledge, recounts.
        classifier.add_tuples(tuples_from(([50], ["50:1"]), ([10, 50], ["50:1"])))
        classifier.update()
        assert classifier.stats.recount_phases > recounts_before
        batch = ColumnInference().run(
            tuples_from(*self.ITEMS, ([50], ["50:1"]), ([10, 50], ["50:1"]))
        )
        assert fingerprint(classifier.result()) == fingerprint(batch)

    def test_eviction_resets_and_matches_batch(self):
        classifier = IncrementalColumnClassifier()
        all_items = tuples_from(*self.ITEMS)
        classifier.add_tuples(all_items)
        classifier.update()
        remaining = all_items[:2]
        classifier.evict(all_items[2:], remaining)
        classifier.update()
        assert classifier.stats.resets == 1
        assert fingerprint(classifier.result()) == fingerprint(
            ColumnInference().run(remaining)
        )

    def test_state_roundtrip_mid_update(self):
        classifier = IncrementalColumnClassifier()
        classifier.add_tuples(tuples_from(*self.ITEMS[:2]))
        classifier.update()
        classifier.add_tuples(tuples_from(*self.ITEMS[2:]))  # pending, not updated
        state = pickle.loads(pickle.dumps(classifier.state_dict()))
        restored = IncrementalColumnClassifier.from_state(state)
        assert fingerprint(restored.update()) == fingerprint(classifier.update())


class TestIncrementalRow:
    ITEMS = [
        ([10], ["10:1"]),
        ([10, 30], ["10:1", "30:1"]),
        ([20, 30], ["30:1"]),
    ]

    def test_matches_batch_row_inference(self):
        batch = RowInference().run(tuples_from(*self.ITEMS))
        classifier = IncrementalRowClassifier()
        classifier.add_tuples(tuples_from(*self.ITEMS))
        assert fingerprint(classifier.update()) == fingerprint(batch)

    def test_eviction_is_exact_retraction(self):
        classifier = IncrementalRowClassifier()
        all_items = tuples_from(*self.ITEMS)
        classifier.add_tuples(all_items)
        classifier.evict(all_items[1:], all_items[:1])
        assert fingerprint(classifier.update()) == fingerprint(
            RowInference().run(all_items[:1])
        )


# ---------------------------------------------------------------------------------------
# Checkpoint manager
# ---------------------------------------------------------------------------------------
class TestCheckpointManager:
    def test_save_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save({"value": 42})
        assert path.exists()
        assert manager.load() == {"value": 42}

    def test_rotation_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for value in range(5):
            manager.save({"value": value})
        assert len(manager.checkpoints()) == 2
        assert manager.load() == {"value": 4}

    def test_load_without_checkpoints_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path).load()

    def test_corrupt_checkpoint_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        target = manager.save({"value": 1})
        target.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            manager.load()

    def test_version_mismatch_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        target = manager.save({"value": 1})
        payload = {"version": 999, "state": {}}
        target.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError):
            manager.load()


# ---------------------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------------------
def steady_feed():
    """A feed with observable structure and several window boundaries."""
    items = [
        ([30], ["30:1"]),
        ([10, 30], ["10:1", "30:1"]),
        ([20, 30], ["30:1"]),
        ([40, 30], []),
        ([10, 50], []),
    ]
    events = []
    for round_index in range(6):
        for item_index, (asns, comms) in enumerate(items):
            events.append(
                observation(
                    asns, comms, timestamp=round_index * 100 + item_index * 10
                )
            )
    return events


class TestStreamEngine:
    def test_emits_window_snapshots_with_changes(self):
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        engine.run(MemorySource(steady_feed()))
        assert engine.stats.windows_closed >= 5
        first = engine.snapshots[0]
        assert first.changed  # the first window discovers new classifications
        assert first.result.classification_of(30).tagging.code == "t"
        later = engine.snapshots[-1]
        assert later.changed == {}  # steady state: nothing changes any more
        assert later.events_total == len(steady_feed())

    def test_on_window_callback_fires(self):
        seen = []
        engine = StreamEngine(
            StreamConfig(window=WindowSpec(size=100)), on_window=seen.append
        )
        engine.run(MemorySource(steady_feed()))
        assert len(seen) == engine.stats.windows_closed

    def test_snapshot_retention_is_bounded(self):
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100), max_snapshots=2))
        engine.run(MemorySource(steady_feed()))
        assert len(engine.snapshots) == 2

    def test_checkpoint_restore_mid_stream_is_transparent(self, tmp_path):
        events = steady_feed()
        half = len(events) // 2
        manager = CheckpointManager(tmp_path)
        config = StreamConfig(window=WindowSpec(size=100), shards=2)

        first = StreamEngine(config, checkpoints=manager)
        for event in events[:half]:
            first.ingest(event)
        first.checkpoint()

        resumed = StreamEngine.restore(manager)
        for event in events[half:]:
            resumed.ingest(event)

        uninterrupted = StreamEngine(StreamConfig(window=WindowSpec(size=100), shards=2))
        assert fingerprint(
            StreamEngine.run(uninterrupted, MemorySource(events))
        ) == fingerprint(resumed.finish())
        assert resumed.stats.events_in == len(events)

    def test_auto_checkpoint_by_event_count(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=10)
        engine = StreamEngine(
            StreamConfig(window=WindowSpec(size=100), checkpoint_every=10),
            checkpoints=manager,
        )
        engine.run(MemorySource(steady_feed()))
        assert engine.stats.checkpoints_written == len(steady_feed()) // 10

    def test_sliding_policy_evicts_stale_tuples(self):
        events = steady_feed()
        # One tuple only ever announced at the very beginning.
        events.insert(0, observation([60, 30], ["30:1"], timestamp=0))
        spec = WindowSpec(size=100, policy=WindowPolicy.SLIDING, horizon=200)
        engine = StreamEngine(StreamConfig(window=spec))
        result = engine.run(MemorySource(events))
        assert engine.stats.tuples_evicted > 0
        assert 60 not in result.observed_ases  # aged out of the horizon
        assert 30 in result.observed_ases  # continuously re-announced

    def test_sliding_matches_batch_over_retained_tuples(self):
        events = steady_feed()
        events.insert(0, observation([60, 30], ["30:1"], timestamp=0))
        spec = WindowSpec(size=100, policy=WindowPolicy.SLIDING, horizon=200)
        engine = StreamEngine(StreamConfig(window=spec))
        streamed = engine.run(MemorySource(events))
        retained = [
            PathCommTuple(path, communities) for path, communities in engine._last_seen
        ]
        assert fingerprint(streamed) == fingerprint(ColumnInference().run(retained))

    def test_row_algorithm_end_to_end(self):
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100), algorithm="row"))
        result = engine.run(MemorySource(steady_feed()))
        assert result.algorithm == "row"
        assert len(result.observed_ases) > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            StreamConfig(algorithm="diagonal")
        with pytest.raises(ValueError):
            StreamConfig(shards=0)
        with pytest.raises(ValueError):
            StreamConfig(checkpoint_every=0)

    def test_finish_without_events(self):
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        result = engine.finish()
        assert len(result.observed_ases) == 0

    def test_restore_preserves_sanitation_context(self, tmp_path):
        from repro.bgp.asn import ASNRegistry

        registry = ASNRegistry.from_asns([10, 20, 30, 40, 50])  # 60 unallocated
        manager = CheckpointManager(tmp_path)
        engine = StreamEngine(
            StreamConfig(window=WindowSpec(size=100)),
            asn_registry=registry,
            checkpoints=manager,
        )
        engine.ingest(observation([10, 30], ["30:1"], timestamp=1))
        engine.ingest(observation([60], [], timestamp=2))
        assert engine.sanitation_stats().dropped_unallocated_asn == 1
        engine.checkpoint()

        resumed = StreamEngine.restore(manager)
        resumed.ingest(observation([60], [], timestamp=3))
        result = resumed.finish()
        # The unallocated AS must still be filtered after the restore.
        assert resumed.sanitation_stats().dropped_unallocated_asn == 2
        assert 60 not in result.observed_ases

    def test_sliding_change_feed_reports_evicted_ases(self):
        events = [observation([60], ["60:1"], timestamp=0)]  # tagger, then silence
        events += steady_feed()
        spec = WindowSpec(size=100, policy=WindowPolicy.SLIDING, horizon=200)
        engine = StreamEngine(StreamConfig(window=spec))
        engine.run(MemorySource(events))
        disappearances = {
            asn: change
            for snapshot in engine.snapshots
            for asn, change in snapshot.changed.items()
            if change[1] == "nn"
        }
        assert disappearances.get(60) == ("tn", "nn")

    def test_late_duplicate_does_not_rewind_retention(self):
        spec = WindowSpec(size=100, policy=WindowPolicy.SLIDING, horizon=200)
        engine = StreamEngine(StreamConfig(window=spec))
        engine.ingest(observation([60], ["60:1"], timestamp=450))
        engine.ingest(observation([60], ["60:1"], timestamp=0))  # late duplicate
        engine.ingest(observation([10], [], timestamp=500))  # closes [300, 400)
        result = engine.finish()
        # Last seen at 450 is inside every horizon cut; the stale timestamp
        # of the late duplicate must not have evicted the tuple.
        assert engine.stats.tuples_evicted == 0
        assert 60 in result.observed_ases

    def test_sharding_requires_peer_prepending(self):
        from repro.sanitize.filters import SanitationConfig

        with pytest.raises(ValueError):
            StreamEngine(
                StreamConfig(
                    shards=4, sanitation=SanitationConfig(prepend_peer_asn=False)
                )
            )
        # Single shard has no cross-partition identity problem.
        StreamEngine(
            StreamConfig(shards=1, sanitation=SanitationConfig(prepend_peer_asn=False))
        )


# ---------------------------------------------------------------------------------------
# Counter-level streaming APIs
# ---------------------------------------------------------------------------------------
class TestCounterStreamingAPIs:
    def test_apply_delta_supports_retraction(self):
        store = CounterStore()
        store.apply_delta({10: (5, 1, 2, 0)})
        store.apply_delta({10: (-2, 0, -1, 0)})
        assert store.get(10).as_tuple() == (3, 1, 1, 0)

    def test_decay_ages_and_prunes(self):
        store = CounterStore()
        store.apply_delta({10: (100, 0, 0, 0), 20: (1, 0, 0, 0)})
        store.decay(0.4)
        assert store.get(10).tagger == 40
        assert 20 not in store  # rounded to zero and pruned

    def test_decay_rounds_instead_of_truncating(self):
        store = CounterStore()
        store.apply_delta({10: (100, 0, 0, 0), 20: (1, 0, 0, 0)})
        store.decay(0.5)
        assert store.get(10).tagger == 50
        assert store.get(20).tagger == 1  # minority evidence survives

    def test_decay_validates_factor(self):
        with pytest.raises(ValueError):
            CounterStore().decay(1.5)

    def test_decision_view_matches_predicates(self):
        store = CounterStore(Thresholds.uniform(0.9))
        store.apply_delta({10: (10, 0, 0, 0), 20: (1, 9, 10, 0), 30: (0, 0, 5, 5)})
        view = store.decision_view()
        for asn in (10, 20, 30):
            assert view.is_tagger(asn) == store.is_tagger(asn)
            assert view.is_forward(asn) == store.is_forward(asn)

    def test_state_roundtrip(self):
        store = CounterStore(Thresholds.uniform(0.8))
        store.apply_delta({10: (1, 2, 3, 4)})
        restored = CounterStore.from_state(store.state_dict(), store.thresholds)
        assert restored.get(10).as_tuple() == (1, 2, 3, 4)
        assert restored.state_dict() == store.state_dict()
