"""The interned tuple store and the packed counting hot path.

The columnar representation is only allowed to exist because it is
*byte-identical* to the object path; these tests pin down the interning
invariants, the packed counter store's parity with :class:`CounterStore`,
and full-inference conformance on the shared scenario fixtures.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.bgp.announcement import PathCommTuple
from repro.bgp.community import Community, CommunitySet
from repro.bgp.path import ASPath
from repro.core import matrix
from repro.core.column import (
    ColumnInference,
    count_forwarding_phase_packed,
    count_tagging_phase_packed,
)
from repro.core.counters import CounterStore, PackedCounterStore
from repro.core.matrix import GroupList, GroupMatrix
from repro.core.pipeline import InferencePipeline
from repro.core.row import RowInference, count_row_phase_packed
from repro.core.thresholds import Thresholds
from repro.core.tuples import (
    ColumnarBatch,
    TupleTable,
    materialize_groups,
    merge_group_counts,
)
from repro.parallel.inference import ParallelColumnInference, ParallelRowInference


def _random_tuples(rng: random.Random, count: int) -> list:
    tuples = []
    for _ in range(count):
        asns = tuple(rng.randint(100, 140) for _ in range(rng.randint(1, 7)))
        comms = [
            Community(rng.choice(list(asns) + [999, 888]), rng.randint(0, 40))
            for _ in range(rng.randint(0, 4))
        ]
        tuples.append(PathCommTuple(ASPath(asns), CommunitySet(comms)))
    return tuples


class TestTupleTable:
    def test_interning_is_idempotent(self):
        table = TupleTable()
        item = PathCommTuple(ASPath((10, 20, 30)), CommunitySet([Community(20, 1)]))
        ref1 = table.intern_tuple(item)
        ref2 = table.intern(item.path, item.communities)
        assert ref1 == ref2
        assert len(table) == 1
        assert table.path_count == 1 and table.comm_count == 1

    def test_ids_are_dense_in_first_intern_order(self):
        table = TupleTable()
        a = PathCommTuple(ASPath((1, 2)), CommunitySet())
        b = PathCommTuple(ASPath((3, 4)), CommunitySet([Community(3, 0)]))
        ref_a = table.intern_tuple(a)
        ref_b = table.intern_tuple(b)
        assert ref_a[0] == 0 and ref_b[0] == 1
        assert ref_a[1] == 0 and ref_b[1] == 1

    def test_tuple_of_round_trips(self):
        table = TupleTable()
        rng = random.Random(1)
        items = _random_tuples(rng, 50)
        refs = [table.intern_tuple(item) for item in items]
        for item, ref in zip(items, refs):
            back = table.tuple_of(ref)
            assert back.path == item.path
            assert back.communities == item.communities

    def test_hits_bitmask_matches_membership(self):
        table = TupleTable()
        rng = random.Random(2)
        for item in _random_tuples(rng, 200):
            path_id, comm_id = table.intern_tuple(item)
            hits = table.hits_of(path_id, comm_id)
            uppers = item.communities.upper_fields()
            for position, asn in enumerate(item.path.asns):
                assert bool((hits >> position) & 1) == (asn in uppers)

    def test_state_round_trip_assigns_identical_ids(self):
        rng = random.Random(3)
        items = _random_tuples(rng, 80)
        table = TupleTable()
        refs = [table.intern_tuple(item) for item in items]

        restored = TupleTable.from_state(table.state_dict())
        assert restored.as_values() == table.as_values()
        assert restored.path_count == table.path_count
        assert restored.comm_count == table.comm_count
        # Re-interning the same tuples yields the same ids — the property
        # checkpoint restore relies on.
        for item, ref in zip(items, refs):
            assert restored.intern_tuple(item) == ref

    def test_load_state_mutates_in_place(self):
        table = TupleTable()
        holder = table  # simulates a worker holding the shared table
        table.intern_tuple(PathCommTuple(ASPath((1, 2)), CommunitySet()))
        snapshot = table.state_dict()
        table.intern_tuple(PathCommTuple(ASPath((9, 8)), CommunitySet()))
        table.load_state(snapshot)
        assert holder.path_count == 1  # the alias sees the restored content


class TestColumnarBatch:
    def test_group_counts_multiplicity(self):
        table = TupleTable()
        batch = ColumnarBatch(table)
        item = PathCommTuple(ASPath((5, 6)), CommunitySet([Community(6, 1)]))
        other = PathCommTuple(ASPath((5, 6)), CommunitySet())
        ref = batch.add_tuple(item)
        batch.append(ref)
        batch.add_tuple(other)
        groups = batch.counting_groups()
        assert sorted(count for _, _, count in groups) == [1, 2]
        merged = {}
        merge_group_counts(merged, batch.group_counts())
        assert sum(merged.values()) == 3
        assert materialize_groups(table, merged)

    def test_state_round_trip(self):
        table = TupleTable()
        batch = ColumnarBatch(table)
        rng = random.Random(4)
        for item in _random_tuples(rng, 40):
            batch.add_tuple(item)
        restored = ColumnarBatch.from_state(table, batch.state_dict())
        assert list(restored.refs()) == list(batch.refs())
        assert restored.group_counts() == batch.group_counts()
        assert restored.observed_ases() == batch.observed_ases()


class TestPackedCounterStore:
    def test_parity_with_object_store(self):
        rng = random.Random(5)
        thresholds = Thresholds()
        as_values = tuple(range(100, 130))
        packed = PackedCounterStore(thresholds, slots=len(as_values))
        store = CounterStore(thresholds)
        for _ in range(200):
            idx = rng.randrange(len(as_values))
            delta = [rng.randint(0, 5) for _ in range(4)]
            packed.apply_delta({idx: delta})
            store.apply_delta({as_values[idx]: delta})
        assert packed.state_dict(as_values) == store.state_dict()
        assert packed.to_store(as_values).state_dict() == store.state_dict()
        view = packed.decision_view(as_values)
        assert view.tagger_ases == store.decision_view().tagger_ases
        assert view.forward_ases == store.decision_view().forward_ases

    def test_decay_parity(self):
        rng = random.Random(6)
        as_values = tuple(range(50, 70))
        packed = PackedCounterStore(slots=len(as_values))
        store = CounterStore()
        for idx in range(len(as_values)):
            delta = [rng.randint(0, 9) for _ in range(4)]
            packed.apply_delta({idx: delta})
            store.apply_delta({as_values[idx]: delta})
        for factor in (0.5, 0.25, 0.1):
            packed.decay(factor)
            store.decay(factor)
            assert packed.state_dict(as_values) == store.state_dict()

    def test_zero_slots_read_as_absent(self):
        packed = PackedCounterStore(slots=4)
        packed.apply_delta({2: [1, 0, 0, 0]})
        assert set(packed.state_dict((10, 11, 12, 13))) == {12}

    def test_arrays_state_round_trip(self):
        packed = PackedCounterStore(slots=3)
        packed.apply_delta({0: [1, 2, 3, 4], 2: [5, 6, 7, 8]})
        restored = PackedCounterStore.from_arrays_state(packed.arrays_state())
        assert restored.state_dict((1, 2, 3)) == packed.state_dict((1, 2, 3))


class TestBatchConformance:
    """Columnar and object inference agree tuple-for-tuple."""

    @pytest.mark.parametrize("algorithm", ["column", "row"])
    def test_fixture_conformance(self, random_dataset, algorithm):
        tuples = random_dataset.tuples
        cls = ColumnInference if algorithm == "column" else RowInference
        obj = cls()
        col = cls(representation="columnar")
        obj_result = obj.run(tuples)
        col_result = col.run(tuples)
        assert col_result.store.state_dict() == obj_result.store.state_dict()
        assert col_result.observed_ases == obj_result.observed_ases
        assert col_result.as_code_map() == obj_result.as_code_map()
        if algorithm == "column":
            assert col.report.tagging_counts_per_column == obj.report.tagging_counts_per_column
            assert (
                col.report.forwarding_counts_per_column
                == obj.report.forwarding_counts_per_column
            )

    def test_random_conformance(self):
        rng = random.Random(7)
        for _ in range(10):
            tuples = _random_tuples(rng, rng.randint(0, 60))
            for cls in (ColumnInference, RowInference):
                obj = cls().run(tuples)
                col = cls(representation="columnar").run(tuples)
                assert col.store.state_dict() == obj.store.state_dict()
                assert col.observed_ases == obj.observed_ases

    def test_pipeline_representation(self, random_dataset):
        tuples = random_dataset.tuples[:200]
        obj = InferencePipeline(representation="object").run_from_tuples(tuples)
        col = InferencePipeline(representation="columnar").run_from_tuples(tuples)
        assert col.result.store.state_dict() == obj.result.store.state_dict()

    def test_pipeline_rejects_unknown_representation(self):
        with pytest.raises(ValueError):
            InferencePipeline(representation="sparse")


class TestParallelConformance:
    def test_parallel_columnar_matches_serial_object(self, random_dataset):
        tuples = random_dataset.tuples[:600]
        serial = ColumnInference()
        serial_result = serial.run(tuples)
        parallel = ParallelColumnInference(workers=2, representation="columnar")
        parallel_result = parallel.run(tuples)
        assert parallel_result.store.state_dict() == serial_result.store.state_dict()
        assert parallel_result.observed_ases == serial_result.observed_ases
        assert (
            parallel.report.tagging_counts_per_column
            == serial.report.tagging_counts_per_column
        )

    def test_parallel_row_columnar_matches_serial_object(self, random_dataset):
        tuples = random_dataset.tuples[:600]
        serial = RowInference().run(tuples)
        parallel = ParallelRowInference(workers=2, representation="columnar").run(tuples)
        assert parallel.store.state_dict() == serial.store.state_dict()


class TestMatrixKernels:
    """The numpy bucket kernels must match the scalar packed kernels."""

    @staticmethod
    def _random_groups(rng: random.Random, count: int, *, max_length: int = 8) -> GroupList:
        groups = GroupList()
        for _ in range(count):
            length = rng.randint(1, max_length)
            row = tuple(rng.randrange(40) for _ in range(length))
            hits = rng.getrandbits(length)
            groups.append((row, hits, rng.randint(1, 5)))
        return groups

    @staticmethod
    def _random_flags(rng: random.Random, slots: int = 40):
        tagger = bytearray(rng.randint(0, 1) for _ in range(slots))
        forward = bytearray(
            max(t, rng.randint(0, 1)) for t in tagger
        )  # taggers forward, like converged decisions
        return tagger, forward

    def _dispatch_both(self, monkeypatch, kernel, *args):
        monkeypatch.setattr(matrix, "MIN_MATRIX_GROUPS", 10**9)
        scalar = kernel(*args)
        monkeypatch.setattr(matrix, "MIN_MATRIX_GROUPS", 1)
        vectorised = kernel(*args)
        return scalar, vectorised

    @pytest.mark.skipif(not matrix.HAVE_NUMPY, reason="numpy unavailable")
    @pytest.mark.parametrize("column", [1, 2, 3, 9])
    def test_column_kernels_match_scalar(self, monkeypatch, column):
        rng = random.Random(7)
        groups = self._random_groups(rng, 400)
        tagger, forward = self._random_flags(rng)
        for kernel in (count_tagging_phase_packed, count_forwarding_phase_packed):
            scalar, vectorised = self._dispatch_both(
                monkeypatch, kernel, groups, column, tagger, forward
            )
            assert vectorised == scalar

    @pytest.mark.skipif(not matrix.HAVE_NUMPY, reason="numpy unavailable")
    def test_row_kernel_matches_scalar(self, monkeypatch):
        groups = self._random_groups(random.Random(11), 400)
        scalar, vectorised = self._dispatch_both(
            monkeypatch, count_row_phase_packed, groups
        )
        assert vectorised == scalar

    @pytest.mark.skipif(not matrix.HAVE_NUMPY, reason="numpy unavailable")
    def test_overflow_groups_take_the_scalar_path(self, monkeypatch):
        rng = random.Random(13)
        groups = self._random_groups(rng, 64)
        long_row = tuple(rng.randrange(40) for _ in range(matrix.MAX_MATRIX_LENGTH + 8))
        groups.append((long_row, (1 << len(long_row)) - 1, 2))
        assert len(GroupMatrix(groups).overflow) == 1
        tagger, forward = self._random_flags(rng)
        for column in (1, matrix.MAX_MATRIX_LENGTH + 4):
            scalar, vectorised = self._dispatch_both(
                monkeypatch,
                count_forwarding_phase_packed,
                groups,
                column,
                tagger,
                forward,
            )
            assert vectorised == scalar
        scalar, vectorised = self._dispatch_both(
            monkeypatch, count_row_phase_packed, groups
        )
        assert vectorised == scalar

    @pytest.mark.skipif(not matrix.HAVE_NUMPY, reason="numpy unavailable")
    def test_column_beyond_every_length_is_empty(self, monkeypatch):
        monkeypatch.setattr(matrix, "MIN_MATRIX_GROUPS", 1)
        groups = self._random_groups(random.Random(17), 32, max_length=4)
        tagger, forward = self._random_flags(random.Random(17))
        assert count_tagging_phase_packed(groups, 5, tagger, forward) == ({}, 0)
        assert count_forwarding_phase_packed(groups, 4, tagger, forward) == ({}, 0)

    def test_grouplist_pickle_drops_matrix_cache(self):
        groups = self._random_groups(random.Random(19), 8)
        if matrix.HAVE_NUMPY:
            assert groups.matrix() is not None
        clone = pickle.loads(pickle.dumps(groups))
        assert type(clone) is GroupList
        assert list(clone) == list(groups)
        assert getattr(clone, "_matrix", None) is None
