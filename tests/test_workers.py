"""Tests for the multi-worker serving fan-out (repro.service.workers).

Covers the shared stats board, both fan-out modes (``SO_REUSEPORT`` worker
processes and the shared-listener thread fallback), the contracts the
fan-out is built on -- byte-identical responses no matter which worker the
kernel picks -- and the supervisor's respawn of killed workers.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import time

import pytest

from repro.service import (
    ClassificationServer,
    MultiWorkerServer,
    SnapshotStore,
    WorkerStatsBoard,
    attach_store,
    reuseport_supported,
)
from repro.stream import MemorySource, StreamConfig, StreamEngine, WindowSpec
from tests.test_stream import observation

requires_reuseport = pytest.mark.skipif(
    not reuseport_supported(), reason="SO_REUSEPORT unavailable on this platform"
)

#: Deterministic endpoints: identical bytes regardless of serving worker.
#: (/v1/stats is volatile by design -- request counters differ per worker.)
DETERMINISTIC_TARGETS = (
    "/healthz",
    "/v1/snapshot/latest",
    "/v1/as/10",
    "/v1/as/10?history=2",
    "/v1/as/65000",
    "/v1/diff",
)


@pytest.fixture()
def store_path(tmp_path):
    """A file-backed store populated by a small drained stream run."""
    path = tmp_path / "workers.db"
    events = [
        observation([10], ["10:1"], timestamp=5),
        observation([20], [], timestamp=30),
        observation([30], ["30:1"], timestamp=80),
        observation([10, 30], ["10:1", "30:1"], timestamp=130),
        observation([20, 30], ["30:1"], timestamp=180),
        observation([40, 10, 30], ["10:1", "30:1"], timestamp=230),
    ]
    with SnapshotStore(path) as store:
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=100)))
        attach_store(engine, store)
        engine.run(MemorySource(events))
    return path


def fetch(address, target):
    """One request on a *fresh* connection; returns ``(status, body bytes)``.

    A fresh connection per request is the point: ``SO_REUSEPORT`` hashes the
    connection 4-tuple, so distinct source ports spread across the workers.
    """
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", target)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


class TestWorkerStatsBoard:
    def test_per_worker_slots_and_aggregate(self):
        board = WorkerStatsBoard.create(3)
        try:
            board.record(0, hit=True, error=False)
            board.record(0, hit=False, error=False)
            board.record(2, hit=False, error=True)
            rows = board.per_worker()
            assert rows[0] == {
                "requests": 2,
                "cache_hits": 1,
                "cache_misses": 1,
                "errors": 0,
            }
            assert rows[1]["requests"] == 0
            assert rows[2]["errors"] == 1
            payload = board.payload()
            assert payload["count"] == 3
            assert payload["aggregate"]["requests"] == 3
            assert json.loads(json.dumps(payload)) == payload
        finally:
            board.close(unlink=True)

    def test_second_mapping_sees_first_writer(self):
        board = WorkerStatsBoard.create(2)
        try:
            board.record(1, hit=False, error=False)
            reader = WorkerStatsBoard(board.path, 2)
            assert reader.per_worker()[1]["requests"] == 1
            reader.close()
        finally:
            board.close(unlink=True)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerStatsBoard.create(0)


class TestMultiWorkerValidation:
    def test_rejects_bad_arguments(self, store_path):
        with pytest.raises(ValueError):
            MultiWorkerServer(str(store_path), workers=0)
        with pytest.raises(ValueError):
            MultiWorkerServer(":memory:", workers=2)
        with pytest.raises(ValueError):
            MultiWorkerServer(str(store_path), workers=2, mode="fiber")

    def test_address_requires_start(self, store_path):
        server = MultiWorkerServer(str(store_path), workers=2, mode="thread")
        with pytest.raises(RuntimeError):
            server.address
        server.close()


class TestThreadFallback:
    """The portable fallback must honor the same serving contracts."""

    def test_byte_identical_to_single_worker(self, store_path):
        with SnapshotStore(store_path) as reference_store:
            with ClassificationServer(reference_store) as reference:
                reference.start()
                expected = {
                    target: fetch(reference.address, target)
                    for target in DETERMINISTIC_TARGETS
                }
                with MultiWorkerServer(str(store_path), workers=3, mode="thread") as fanout:
                    fanout.start()
                    assert fanout.mode == "thread"
                    for target in DETERMINISTIC_TARGETS:
                        # Uncached then cached: every worker, both paths,
                        # must produce the single-worker bytes.
                        for _ in range(6):
                            assert fetch(fanout.address, target) == expected[target]

    def test_stats_aggregate_counts_all_workers(self, store_path):
        with MultiWorkerServer(str(store_path), workers=2, mode="thread") as fanout:
            fanout.start()
            for _ in range(8):
                status, _ = fetch(fanout.address, "/healthz")
                assert status == 200
            status, body = fetch(fanout.address, "/v1/stats")
            assert status == 200
            workers = json.loads(body.decode())["workers"]
            assert workers["count"] == 2
            assert workers["aggregate"]["requests"] >= 8
            assert fanout.stats()["aggregate"]["requests"] >= 9


@requires_reuseport
class TestProcessFanout:
    """The production shape: N ``SO_REUSEPORT`` worker processes."""

    def test_byte_identical_across_workers(self, store_path):
        with SnapshotStore(store_path) as reference_store:
            with ClassificationServer(reference_store) as reference:
                reference.start()
                expected = {
                    target: fetch(reference.address, target)
                    for target in DETERMINISTIC_TARGETS
                }
        with MultiWorkerServer(str(store_path), workers=2, mode="process") as fanout:
            fanout.start()
            assert fanout.mode == "process"
            assert len(fanout.worker_pids()) == 2
            for target in DETERMINISTIC_TARGETS:
                # Enough fresh connections that, with overwhelming
                # probability, both workers served both the uncached and
                # the cached path.
                responses = {fetch(fanout.address, target) for _ in range(8)}
                assert responses == {expected[target]}

    def test_stats_aggregates_across_processes(self, store_path):
        with MultiWorkerServer(str(store_path), workers=2, mode="process") as fanout:
            fanout.start()
            issued = 10
            for _ in range(issued):
                status, _ = fetch(fanout.address, "/v1/snapshot/latest")
                assert status == 200
            status, body = fetch(fanout.address, "/v1/stats")
            assert status == 200
            payload = json.loads(body.decode())
            workers = payload["workers"]
            assert workers["count"] == 2
            assert workers["aggregate"]["requests"] >= issued
            assert len(workers["per_worker"]) == 2
            # The supervisor reads the same board without HTTP.
            assert fanout.stats()["aggregate"]["requests"] >= issued

    def test_supervisor_respawns_killed_worker(self, store_path):
        with MultiWorkerServer(
            str(store_path), workers=2, mode="process", poll_interval=0.05
        ) as fanout:
            fanout.start()
            before = set(fanout.worker_pids())
            assert len(before) == 2
            victim = sorted(before)[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if fanout.respawns >= 1 and len(fanout.worker_pids()) == 2:
                    break
                time.sleep(0.05)
            assert fanout.respawns >= 1
            after = set(fanout.worker_pids())
            assert len(after) == 2
            assert victim not in after
            # The fleet keeps serving correct data after the respawn.
            for _ in range(6):
                status, body = fetch(fanout.address, "/v1/snapshot/latest")
                assert status == 200
                assert json.loads(body.decode())["ases"]

    def test_port_stays_reserved_and_workers_share_it(self, store_path):
        with MultiWorkerServer(str(store_path), workers=2, mode="process") as fanout:
            fanout.start()
            host, port = fanout.address
            assert port > 0
            # Every request hits the same advertised port.
            for _ in range(4):
                status, _ = fetch((host, port), "/healthz")
                assert status == 200


@requires_reuseport
class TestSupervisorDeath:
    def test_workers_die_with_killed_supervisor(self, store_path):
        """SIGKILL on `repro serve --http-workers` must not orphan workers.

        Daemon-process cleanup only runs on a normal supervisor exit; each
        worker additionally watches its parent pid and shuts down when the
        supervisor vanishes, so the port is always released.
        """
        import socket
        import subprocess
        import sys

        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--store",
                str(store_path),
                "--port",
                str(port),
                "--http-workers",
                "2",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=os.environ.copy(),
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    status, _ = fetch(("127.0.0.1", port), "/healthz")
                    if status == 200:
                        break
                except OSError:
                    time.sleep(0.2)
            else:
                pytest.fail("fan-out CLI never came up")
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=10)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                try:
                    fetch(("127.0.0.1", port), "/healthz")
                except OSError:
                    return  # every worker is gone; the port is released
                time.sleep(0.2)
            pytest.fail("workers kept serving after the supervisor was SIGKILLed")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestCliServeParser:
    def test_http_workers_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--store", "x.db"])
        assert args.http_workers == 1
        args = build_parser().parse_args(
            ["serve", "--store", "x.db", "--http-workers", "4"]
        )
        assert args.http_workers == 4
